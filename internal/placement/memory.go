package placement

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expertmem"
)

// DefaultHopSeconds is the per-crossing service cost assumed when a
// MemoryObjective is built without a fitted cost model: the magnitude of one
// cross-node token hop on the simulated hardware. The blend is insensitive
// to its exact value because an expert fetch (hundreds of microseconds to
// milliseconds) dwarfs a hop (microseconds) — the constant only keeps the
// two objective terms in one unit.
const DefaultHopSeconds = 4e-6

// MemoryObjective prices the expected expert-stall cost of a placement under
// tiered expert-weight memory (internal/expertmem). The crossing objective
// (Formula 8) treats expert weights as free; under oversubscription each
// GPU's HBM holds only Slots of its PerGPU assigned experts, and every
// access to a non-resident expert stalls for its host-link (or NVMe) fetch.
//
// The residency model is the one the memory subsystem itself converges to
// under a popularity-respecting policy: a GPU keeps the Slots highest
// demand-mass experts assigned to it resident (exactly the set Warm preloads
// and the pin/affinity policies retain), and every demanded access to the
// rest pays the full fetch. The expected stall of a placement is then
//
//	stall(P) = sum over GPUs g of
//	           sum over (l, e) assigned to g outside g's top-Slots by mass of
//	           mass[l][e] * fetch[l][e]
//
// with mass and fetch taken from the same affinity-derived oracles the
// runtime Manager uses (expertmem popularity and the DRAM/NVMe master-copy
// split), so the solver and the memory subsystem agree on what "hot" means.
// The model is what makes hot-set concentration visible to the solver:
// co-locating an affinity chain piles its demand mass onto one GPU, pushes
// mass past that GPU's slot coverage, and shows up as stall — even when the
// chain wins on crossings.
//
// Stall seconds convert into crossing units through HopSeconds (seconds one
// crossing costs), so the blended objective Crossings + stall/HopSeconds
// stays in Formula 8's units and degenerates to it exactly when the budget
// is not binding.
type MemoryObjective struct {
	// Slots is the per-GPU HBM expert-slot budget.
	Slots int
	// PerGPU is the balanced assigned-expert count per GPU
	// (Layers*Experts/GPUs); the objective is inactive unless Slots < PerGPU.
	PerGPU int
	// HopSeconds converts stall seconds into crossing units.
	HopSeconds float64
	// Model selects the residency model: ResidencyStatic (the zero value —
	// the top-Slots warm set above) or ResidencyChe (Che-approximation
	// fractional occupancy; see che.go). The static path is untouched by the
	// Che machinery and stays bit-identical across releases.
	Model ResidencyModel
	// Batch records the bulk-synchronous batch size the mass oracle was
	// deflated for (see DeflateBatch); 0 or 1 means the raw per-token
	// oracle, bit-identical to previous releases.
	Batch int

	layers, experts int
	mass            []float64 // [l*experts+e] affinity demand mass
	fetch           []float64 // [l*experts+e] fetch seconds from the master tier
	covered         []float64 // [l*experts+e] prefetch-covered demand fraction (nil: no prefetcher)
	tokens          float64   // max per-layer demand mass (= profiled token count)
}

// ResidencyModel names a MemoryObjective residency model.
type ResidencyModel string

const (
	// ResidencyStatic is the warm-set model shipped in PR 3: each GPU keeps
	// its top-Slots assigned experts by demand mass resident, the rest always
	// pay the full fetch. Optimistic — it cannot price LRU/LFU churn — but
	// cheap, deterministic, and the bit-identity reference.
	ResidencyStatic ResidencyModel = "static"
	// ResidencyChe is the Che-approximation fractional-occupancy model: per
	// GPU the characteristic time T solves sum(1 - exp(-mass_i*T)) = Slots,
	// each expert misses with probability exp(-mass_i*T), and misses covered
	// by the affinity prefetcher are discounted. See che.go.
	ResidencyChe ResidencyModel = "che"
)

// ParseResidencyModel resolves a user-facing residency-model name ("" means
// static).
func ParseResidencyModel(s string) (ResidencyModel, error) {
	switch ResidencyModel(s) {
	case "", ResidencyStatic:
		return ResidencyStatic, nil
	case ResidencyChe:
		return ResidencyChe, nil
	}
	return "", fmt.Errorf("placement: unknown residency model %q (want static or che)", s)
}

// NewMemoryObjective derives the residency model from a tiered-memory
// deployment config (typically expertmem.ConfigFor with the profiling
// transition counts as the affinity tensor). hopSeconds is the per-crossing
// service cost used to blend stall into the crossing objective — pass the
// fitted cost model's per-cross-hop coefficient, or zero for
// DefaultHopSeconds.
func NewMemoryObjective(cfg expertmem.Config, hopSeconds float64) *MemoryObjective {
	if hopSeconds <= 0 {
		hopSeconds = DefaultHopSeconds
	}
	m := expertmem.New(cfg)
	mo := &MemoryObjective{
		Slots:      cfg.SlotsPerGPU,
		PerGPU:     cfg.Layers * cfg.Experts / cfg.GPUs,
		HopSeconds: hopSeconds,
		layers:     cfg.Layers,
		experts:    cfg.Experts,
		mass:       make([]float64, cfg.Layers*cfg.Experts),
		fetch:      make([]float64, cfg.Layers*cfg.Experts),
	}
	for l := 0; l < cfg.Layers; l++ {
		layerMass := 0.0
		for e := 0; e < cfg.Experts; e++ {
			i := l*cfg.Experts + e
			mo.mass[i] = m.Popularity(l, e)
			mo.fetch[i] = m.FetchSeconds(l, e)
			layerMass += mo.mass[i]
		}
		// The per-token normalizer is the max per-layer mass, not layer 0's:
		// a demand oracle with an empty first layer (live windows can have
		// one) would otherwise zero the normalizer while downstream stall is
		// real, and the controller's predicted stall delta with it.
		if layerMass > mo.tokens {
			mo.tokens = layerMass
		}
	}
	if m.Prefetching() {
		// Prefetch-coverage oracle for the Che model: covered[(l,e)] is the
		// fraction of (l, e)'s demand mass arriving from predecessors whose
		// top-K successor list includes e — exactly the accesses the affinity
		// prefetcher hints one layer ahead, whose fetch overlaps compute
		// instead of stalling. Layer 0 has no predecessor and stays at zero.
		mo.covered = make([]float64, cfg.Layers*cfg.Experts)
		for l := 0; l+1 < cfg.Layers; l++ {
			for from := 0; from < cfg.Experts; from++ {
				for _, to := range m.Successors(l, from) {
					mo.covered[(l+1)*cfg.Experts+to] += cfg.Affinity[l][from][to]
				}
			}
		}
		for i, c := range mo.covered {
			if mo.mass[i] > 0 && c > 0 {
				mo.covered[i] = c / mo.mass[i]
				if mo.covered[i] > 1 {
					mo.covered[i] = 1
				}
			} else {
				mo.covered[i] = 0
			}
		}
	}
	return mo
}

// Active reports whether the HBM budget is binding: when every assigned
// expert fits (or the objective is nil), the memory term is exactly zero and
// callers must take the crossing-only path so results stay bit-identical.
func (mo *MemoryObjective) Active() bool {
	return mo != nil && mo.Slots < mo.PerGPU
}

// checkShape fails fast when a placement's shape does not match the
// objective's oracles: the packed (l*experts+e) ids would silently collide
// and read the wrong expert's mass and fetch.
func (mo *MemoryObjective) checkShape(layers, experts int) {
	if layers != mo.layers || experts != mo.experts {
		panic(fmt.Sprintf("placement: memory objective shaped %dx%d priced against a %dx%d placement",
			mo.layers, mo.experts, layers, experts))
	}
}

// StallSeconds evaluates the expected expert-stall of a placement over the
// profiled demand window under the selected residency model. Static: for
// each GPU, every assigned expert outside the GPU's top-Slots by demand mass
// pays its full fetch per unit of demand. Che: every assigned expert pays
// its fetch weighted by its Che miss probability, discounted for prefetch
// coverage (see che.go). Zero when the budget is not binding.
func (mo *MemoryObjective) StallSeconds(p *Placement) float64 {
	if !mo.Active() {
		return 0
	}
	mo.checkShape(p.Layers, p.Experts)
	if p.Extra != nil {
		// Replicated path: each copy of an expert carries mass/degree of its
		// demand (the router splits the load across copies), so a GPU's set is
		// priced on effective masses. With an all-empty Extra every degree is
		// 1 and both mass-explicit pricers reduce bit-identically to the
		// single-copy path below.
		items, masses := mo.copySets(p)
		total := 0.0
		if mo.Model == ResidencyChe {
			for g := range items {
				stall, _ := mo.cheStallMass(items[g], masses[g], 0)
				total += stall
			}
			return total
		}
		for g := range items {
			total += mo.staticStallMass(items[g], masses[g])
		}
		return total
	}
	items := make([][]int32, p.GPUs)
	for g := range items {
		items[g] = make([]int32, 0, mo.PerGPU)
	}
	for l := 0; l < p.Layers; l++ {
		for e := 0; e < p.Experts; e++ {
			g := p.Assign[l][e]
			items[g] = append(items[g], int32(l*mo.experts+e))
		}
	}
	total := 0.0
	if mo.Model == ResidencyChe {
		for g := range items {
			stall, _ := mo.cheStall(items[g], 0)
			total += stall
		}
		return total
	}
	for g := range items {
		total += mo.gpuStall(items[g])
	}
	return total
}

// StallPerToken is StallSeconds normalized by the profiled token count (the
// max per-layer demand mass — robust to oracles whose early layers saw no
// traffic) — the model's predicted expert-stall seconds added to one token's
// decode.
func (mo *MemoryObjective) StallPerToken(p *Placement) float64 {
	if mo == nil || mo.tokens == 0 {
		return 0
	}
	return mo.StallSeconds(p) / mo.tokens
}

// Cost is the stall term in crossing units.
func (mo *MemoryObjective) Cost(p *Placement) float64 {
	if !mo.Active() {
		return 0
	}
	return mo.StallSeconds(p) / mo.HopSeconds
}

// Objective is the full memory-aware objective: crossings plus the stall
// term in crossing units. With an inactive (or nil) MemoryObjective it is
// exactly Crossings.
func (mo *MemoryObjective) Objective(p *Placement, counts [][][]float64) float64 {
	if !mo.Active() {
		return p.Crossings(counts)
	}
	return p.Crossings(counts) + mo.Cost(p)
}

// gpuStall prices one GPU's assigned set: the items are sorted by demand
// mass (descending, index ascending on ties — deterministic regardless of
// input order), the top Slots are resident for free, and the rest pay
// mass*fetch. The slice is reordered in place.
func (mo *MemoryObjective) gpuStall(items []int32) float64 {
	if len(items) <= mo.Slots {
		return 0
	}
	sort.Slice(items, func(a, b int) bool {
		ma, mb := mo.mass[items[a]], mo.mass[items[b]]
		if ma != mb {
			return ma > mb
		}
		return items[a] < items[b]
	})
	stall := 0.0
	for _, it := range items[mo.Slots:] {
		stall += mo.mass[it] * mo.fetch[it]
	}
	return stall
}

// copySets builds the per-GPU copy lists of a (possibly replicated)
// placement together with each copy's effective demand mass (mass/degree).
// Ids within one GPU's list ascend, matching the single-copy builders.
func (mo *MemoryObjective) copySets(p *Placement) ([][]int32, [][]float64) {
	items := make([][]int32, p.GPUs)
	masses := make([][]float64, p.GPUs)
	for g := range items {
		items[g] = make([]int32, 0, mo.PerGPU)
		masses[g] = make([]float64, 0, mo.PerGPU)
	}
	for l := 0; l < p.Layers; l++ {
		for e := 0; e < p.Experts; e++ {
			id := int32(l*mo.experts + e)
			m := mo.mass[id] / float64(p.Degree(l, e))
			items[p.Assign[l][e]] = append(items[p.Assign[l][e]], id)
			masses[p.Assign[l][e]] = append(masses[p.Assign[l][e]], m)
			for _, h := range p.extraOf(l, e) {
				items[h] = append(items[h], id)
				masses[h] = append(masses[h], m)
			}
		}
	}
	return items, masses
}

// staticStallMass prices one GPU's copy set under the static warm-set model
// with explicit per-item masses (the replicated path: each copy carries
// mass/degree). The top Slots by effective mass stay resident for free; the
// tail pays effective mass times fetch. Both slices are reordered in place.
// With all-unit degrees the sort key and the tail sum match gpuStall exactly.
func (mo *MemoryObjective) staticStallMass(items []int32, masses []float64) float64 {
	if len(items) <= mo.Slots {
		return 0
	}
	sort.Sort(&massOrder{items, masses})
	stall := 0.0
	for i := mo.Slots; i < len(items); i++ {
		stall += masses[i] * mo.fetch[items[i]]
	}
	return stall
}

// massOrder sorts a (packed id, effective mass) pair set in residency order:
// mass descending, id ascending on ties — gpuStall's order lifted to
// explicit masses.
type massOrder struct {
	ids    []int32
	masses []float64
}

func (s *massOrder) Len() int { return len(s.ids) }
func (s *massOrder) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.masses[i], s.masses[j] = s.masses[j], s.masses[i]
}
func (s *massOrder) Less(i, j int) bool {
	if s.masses[i] != s.masses[j] {
		return s.masses[i] > s.masses[j]
	}
	return s.ids[i] < s.ids[j]
}

// DeflateBatch rescales the demand-mass oracle for bulk-synchronous batches
// of B tokens (ROADMAP item 3a). The per-token oracle counts every
// activation as a distinct residency-table access, but a batch of B tokens
// demands each expert at most once per layer step: an expert with per-token
// activation probability p = mass/tokens is touched by a batch with
// probability 1-(1-p)^B, so over the profiled window its access mass
// deflates to
//
//	mass' = tokens * (1 - (1-p)^B) / B
//
// Hot experts (p near 1) deflate by nearly B — the residency table sees them
// once per batch, not B times — while cold experts (p*B << 1) are nearly
// unchanged, which is exactly the batching effect that made the per-token
// models overpredict churn stall at high batch. The map p -> (1-(1-p)^B)/B
// is strictly increasing in p, so the static warm-set order is preserved:
// deflation never reorders which experts a GPU keeps resident, only how much
// stall the tail and the Che churn model attribute to them. B <= 1 is a
// no-op, keeping existing callers bit-identical.
func (mo *MemoryObjective) DeflateBatch(b int) {
	if mo == nil || b <= 1 || mo.tokens == 0 {
		return
	}
	mo.Batch = b
	fb := float64(b)
	for i, m := range mo.mass {
		p := m / mo.tokens
		if p > 1 {
			p = 1
		}
		mo.mass[i] = mo.tokens * (1 - math.Pow(1-p, fb)) / fb
	}
}

// RewarmSeconds prices the post-migration re-warm cost of a move plan
// (ROADMAP item 3b): an expert arriving on a destination GPU lands cold and
// must be fetched back into HBM before steady state resumes — but only in
// proportion to how resident it would actually be there. Re-fetching an
// expert the destination's residency table would hold anyway is a real,
// unavoidable cost; a tail expert that would miss regardless adds nothing
// beyond the stall the steady-state objective already prices. Under the Che
// model the weight is the steady-state occupancy 1 - exp(-mass_eff*T_dest);
// under the static model it is the in-warm-set indicator. Replica installs
// (Move.From == -1) price identically; drops (Move.To == -1) fetch nothing.
func (mo *MemoryObjective) RewarmSeconds(pl *Placement, moves []Move) float64 {
	if !mo.Active() || len(moves) == 0 {
		return 0
	}
	mo.checkShape(pl.Layers, pl.Experts)
	items, masses := mo.copySets(pl)
	che := mo.Model == ResidencyChe
	var t []float64
	var warm []map[int32]bool
	if che {
		t = make([]float64, pl.GPUs)
		for g := range t {
			t[g] = math.NaN() // unsolved marker
		}
	} else {
		warm = make([]map[int32]bool, pl.GPUs)
	}
	total := 0.0
	for _, m := range moves {
		if m.To < 0 {
			continue
		}
		id := int32(m.Layer*mo.experts + m.Expert)
		g := m.To
		occ := 0.0
		if che {
			if math.IsNaN(t[g]) {
				t[g] = mo.cheTMass(masses[g], 0)
			}
			if eff := mo.mass[id] / float64(pl.Degree(m.Layer, m.Expert)); eff > 0 {
				occ = 1 - expNeg(eff*t[g]) // t = +Inf (non-binding) -> occ = 1
			}
		} else {
			if warm[g] == nil {
				warm[g] = mo.warmSet(items[g], masses[g])
			}
			if warm[g][id] {
				occ = 1
			}
		}
		total += mo.fetch[id] * occ
	}
	return total
}

// warmSet returns the static-model resident set of one GPU's copy set: the
// top Slots ids by effective mass, or everything when the budget does not
// bind. The inputs are copied, not reordered.
func (mo *MemoryObjective) warmSet(items []int32, masses []float64) map[int32]bool {
	w := make(map[int32]bool, mo.Slots)
	if len(items) <= mo.Slots {
		for _, id := range items {
			w[id] = true
		}
		return w
	}
	ids := append([]int32(nil), items...)
	ms := append([]float64(nil), masses...)
	sort.Sort(&massOrder{ids, ms})
	for _, id := range ids[:mo.Slots] {
		w[id] = true
	}
	return w
}

// group returns the objective lifted to groups of size gpusPerGroup — used
// by the staged solver's node stage, where one "GPU" stands for a node
// pooling its members' HBM budgets.
func (mo *MemoryObjective) group(gpusPerGroup int) *MemoryObjective {
	if mo == nil {
		return nil
	}
	g := *mo
	g.Slots = mo.Slots * gpusPerGroup
	g.PerGPU = mo.PerGPU * gpusPerGroup
	return &g
}

// restrict projects the objective onto a node-local subproblem: layer j's
// local expert slot s stands for global expert residents[j][s]. Slot budget
// and per-GPU capacity are unchanged (each node GPU still holds PerGPU
// experts under Slots slots).
//
// The staged solver always passes rectangular resident lists (stage 1 is
// balanced), but restrict does not assume it: an empty subproblem returns
// nil (no memory term to price), and ragged rows are padded to the widest
// layer with zero-mass phantom slots — phantoms sort past every real expert
// in the warm-set order, contribute zero Che occupancy, and pay zero stall,
// so real entries price exactly as they would in a rectangular subproblem.
// Indexing residents[0] directly used to panic on both cases.
func (mo *MemoryObjective) restrict(residents [][]int) *MemoryObjective {
	if mo == nil {
		return nil
	}
	perNode := 0
	for _, res := range residents {
		if len(res) > perNode {
			perNode = len(res)
		}
	}
	if perNode == 0 { // no real slots (covers an empty residents slice too)
		return nil
	}
	sub := &MemoryObjective{
		Slots:      mo.Slots,
		PerGPU:     mo.PerGPU,
		HopSeconds: mo.HopSeconds,
		Model:      mo.Model,
		Batch:      mo.Batch,
		layers:     len(residents),
		experts:    perNode,
		mass:       make([]float64, len(residents)*perNode),
		fetch:      make([]float64, len(residents)*perNode),
	}
	if mo.covered != nil {
		sub.covered = make([]float64, len(residents)*perNode)
	}
	for l, res := range residents {
		layerMass := 0.0
		for s, e := range res {
			src := l*mo.experts + e
			sub.mass[l*perNode+s] = mo.mass[src]
			sub.fetch[l*perNode+s] = mo.fetch[src]
			if sub.covered != nil {
				sub.covered[l*perNode+s] = mo.covered[src]
			}
			layerMass += mo.mass[src]
		}
		if layerMass > sub.tokens {
			sub.tokens = layerMass
		}
	}
	return sub
}

// memState is the dense reference implementation of the annealer's
// incremental memory term: per-GPU assigned-item lists and their cached
// stall costs, where pricing an intra-layer swap copies and re-sorts the
// two affected GPUs' sets (O(PerGPU log PerGPU) per proposal). The
// production path is sortedMemState below, which prices the same swap
// without sorting; memState is kept (behind AnnealOptions.Dense) as the
// ground truth the sortless path is tested bit-identical against.
type memState struct {
	mo      *MemoryObjective
	items   [][]int32 // per GPU: packed (l*experts+e) ids, unordered
	pos     []int32   // item id -> index within its GPU's list
	cost    []float64 // per GPU cached stall seconds
	sum     float64
	scratch []int32
}

func newMemState(mo *MemoryObjective, p *Placement) *memState {
	mo.checkShape(p.Layers, p.Experts)
	ms := &memState{
		mo:      mo,
		items:   make([][]int32, p.GPUs),
		pos:     make([]int32, mo.layers*mo.experts),
		cost:    make([]float64, p.GPUs),
		scratch: make([]int32, 0, mo.PerGPU),
	}
	for g := range ms.items {
		ms.items[g] = make([]int32, 0, mo.PerGPU)
	}
	for l := 0; l < p.Layers; l++ {
		for e := 0; e < p.Experts; e++ {
			g := p.Assign[l][e]
			id := int32(l*mo.experts + e)
			ms.pos[id] = int32(len(ms.items[g]))
			ms.items[g] = append(ms.items[g], id)
		}
	}
	for g := range ms.items {
		// gpuStall reorders; restore the position index afterwards.
		ms.cost[g] = mo.gpuStall(ms.items[g])
		for i, id := range ms.items[g] {
			ms.pos[id] = int32(i)
		}
		ms.sum += ms.cost[g]
	}
	return ms
}

func (ms *memState) total() float64        { return ms.sum }
func (ms *memState) gpuCost(g int) float64 { return ms.cost[g] }

// swapCost prices the hypothetical swap of experts a and b at layer j
// between GPUs ga and gb, returning the two GPUs' new stall costs without
// mutating the state.
func (ms *memState) swapCost(j, a, b, ga, gb int) (newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	newGa = ms.replacedStall(ga, idA, idB)
	newGb = ms.replacedStall(gb, idB, idA)
	return newGa, newGb
}

// replacedStall prices GPU g's set with item out replaced by item in.
func (ms *memState) replacedStall(g int, out, in int32) float64 {
	ms.scratch = ms.scratch[:0]
	for _, id := range ms.items[g] {
		if id == out {
			id = in
		}
		ms.scratch = append(ms.scratch, id)
	}
	return ms.mo.gpuStall(ms.scratch)
}

// apply commits a swap previously priced by swapCost.
func (ms *memState) apply(j, a, b, ga, gb int, newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	ms.items[ga][ms.pos[idA]] = idB
	ms.items[gb][ms.pos[idB]] = idA
	ms.pos[idA], ms.pos[idB] = ms.pos[idB], ms.pos[idA]
	ms.sum += newGa + newGb - ms.cost[ga] - ms.cost[gb]
	ms.cost[ga] = newGa
	ms.cost[gb] = newGb
}

// lessID is the residency order: demand mass descending, id ascending on
// ties. Ids are unique, so this is a strict total order — the sorted
// sequence of any item set is unique, which is what lets sortedMemState's
// insertion-maintained order reproduce gpuStall's sort exactly.
func (mo *MemoryObjective) lessID(a, b int32) bool {
	ma, mb := mo.mass[a], mo.mass[b]
	if ma != mb {
		return ma > mb
	}
	return a < b
}

// sortedMemState is the production memory pricer: each GPU's assigned set
// is kept permanently sorted in residency order, so pricing a swap is a
// single merge pass that drops one id, inserts the other, and freshly sums
// the mass*fetch tail past the slot budget — no per-proposal sort. The
// tail is summed in the same element order as memState's gpuStall (the
// residency order is unique), so both pricers return bit-identical stall
// values and the two anneal paths accept identical move sequences.
type sortedMemState struct {
	mo      *MemoryObjective
	order   [][]int32 // per GPU: ids sorted by lessID
	cost    []float64 // per GPU cached stall seconds
	sum     float64
	scratch []int32
}

func newSortedMemState(mo *MemoryObjective, p *Placement) *sortedMemState {
	mo.checkShape(p.Layers, p.Experts)
	ms := &sortedMemState{
		mo:      mo,
		order:   make([][]int32, p.GPUs),
		cost:    make([]float64, p.GPUs),
		scratch: make([]int32, 0, mo.PerGPU),
	}
	for g := range ms.order {
		ms.order[g] = make([]int32, 0, mo.PerGPU)
	}
	for l := 0; l < p.Layers; l++ {
		for e := 0; e < p.Experts; e++ {
			g := p.Assign[l][e]
			ms.order[g] = append(ms.order[g], int32(l*mo.experts+e))
		}
	}
	for g := range ms.order {
		lst := ms.order[g]
		sort.Slice(lst, func(a, b int) bool { return mo.lessID(lst[a], lst[b]) })
		ms.cost[g] = ms.tailSum(lst)
		ms.sum += ms.cost[g]
	}
	return ms
}

func (ms *sortedMemState) total() float64        { return ms.sum }
func (ms *sortedMemState) gpuCost(g int) float64 { return ms.cost[g] }

// tailSum prices a residency-ordered set: the top Slots are resident for
// free, the rest pay mass*fetch — the same summation, in the same order,
// as gpuStall's final loop.
func (ms *sortedMemState) tailSum(ids []int32) float64 {
	if len(ids) <= ms.mo.Slots {
		return 0
	}
	stall := 0.0
	for _, it := range ids[ms.mo.Slots:] {
		stall += ms.mo.mass[it] * ms.mo.fetch[it]
	}
	return stall
}

// swapCost prices the hypothetical swap without mutating the state.
func (ms *sortedMemState) swapCost(j, a, b, ga, gb int) (newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	return ms.replacedStall(ga, idA, idB), ms.replacedStall(gb, idB, idA)
}

// replacedStall prices GPU g's set with item out replaced by item in: one
// merge pass builds the post-swap residency order in scratch (out dropped,
// in inserted at its sorted position), then the tail past the slot budget
// is summed fresh.
func (ms *sortedMemState) replacedStall(g int, out, in int32) float64 {
	ms.scratch = ms.scratch[:0]
	inserted := false
	for _, id := range ms.order[g] {
		if id == out {
			continue
		}
		if !inserted && ms.mo.lessID(in, id) {
			ms.scratch = append(ms.scratch, in)
			inserted = true
		}
		ms.scratch = append(ms.scratch, id)
	}
	if !inserted {
		ms.scratch = append(ms.scratch, in)
	}
	return ms.tailSum(ms.scratch)
}

// apply commits a swap previously priced by swapCost, splicing each GPU's
// sorted order in place (binary search + copy, no sort).
func (ms *sortedMemState) apply(j, a, b, ga, gb int, newGa, newGb float64) {
	idA := int32(j*ms.mo.experts + a)
	idB := int32(j*ms.mo.experts + b)
	ms.replace(ga, idA, idB)
	ms.replace(gb, idB, idA)
	ms.sum += newGa + newGb - ms.cost[ga] - ms.cost[gb]
	ms.cost[ga] = newGa
	ms.cost[gb] = newGb
}

// replace removes out from GPU g's sorted order and inserts in at its
// sorted position.
func (ms *sortedMemState) replace(g int, out, in int32) {
	lst := ms.order[g]
	po := sort.Search(len(lst), func(i int) bool { return !ms.mo.lessID(lst[i], out) })
	ins := sort.Search(len(lst), func(i int) bool { return ms.mo.lessID(in, lst[i]) })
	if ins <= po {
		copy(lst[ins+1:po+1], lst[ins:po])
		lst[ins] = in
	} else {
		copy(lst[po:ins-1], lst[po+1:ins])
		lst[ins-1] = in
	}
}

package placement

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/expertmem"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Property-based tests over randomly shaped instances: the solvers must
// always emit valid (balanced, exclusive) placements and never worsen the
// objective relative to their starting point, regardless of trace content.

// randomInstance builds a random small problem from a seed.
func randomInstance(seed uint64) (tr *trace.Trace, layers, experts, gpus int) {
	r := rng.New(seed)
	layers = 2 + r.Intn(5)
	gpus = []int{2, 4}[r.Intn(2)]
	experts = gpus * (1 + r.Intn(4))
	strength := r.Float64()
	k := synth.NewKernel(synth.KernelParams{
		Seed: seed, Layers: layers, Experts: experts, Strength: strength,
	})
	kr := synth.NewKernelRouter(k, synth.Pile(), 1)
	tr = trace.Collect(kr, layers, trace.SequentialIDs(100+r.Intn(400), nil))
	return tr, layers, experts, gpus
}

func TestPropertySweepAlwaysValidAndNonWorsening(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Random(layers, experts, gpus, seed)
		out := LayerSweep(counts, layers, experts, gpus, LayerSweepOptions{Init: init, MaxSweeps: 3})
		if out.Validate() != nil {
			return false
		}
		return out.Crossings(counts) <= init.Crossings(counts)+1e-9
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAnnealAlwaysValidAndNonWorsening(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Contiguous(layers, experts, gpus)
		out := Anneal(counts, init, AnnealOptions{Iterations: 2000, Seed: seed})
		if out.Validate() != nil {
			return false
		}
		return out.Crossings(counts) <= init.Crossings(counts)+1e-9
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStagedAlwaysValid(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nodes := 2 + r.Intn(3)
		tp := topo.Wilkes3(nodes)
		gpus := tp.TotalGPUs()
		experts := gpus * (1 + r.Intn(2))
		layers := 2 + r.Intn(4)
		k := synth.NewKernel(synth.KernelParams{Seed: seed, Layers: layers, Experts: experts, Strength: 0.7})
		kr := synth.NewKernelRouter(k, synth.Pile(), 1)
		tr := trace.Collect(kr, layers, trace.SequentialIDs(200, nil))
		out := Staged(tr.AllTransitionCounts(), layers, experts, tp, seed)
		return out.Validate() == nil && out.GPUs == gpus
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCrossingsBounds(t *testing.T) {
	// Crossings is always within [0, total transition weight].
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		pl := Random(layers, experts, gpus, seed^0xABCD)
		c := pl.Crossings(counts)
		total := float64(tr.Tokens() * (layers - 1))
		return c >= 0 && c <= total+1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// memObjectiveFor builds a memory objective for a random instance at the
// given oversubscription ratio.
func memObjectiveFor(counts [][][]float64, layers, experts, gpus int, oversub float64) *MemoryObjective {
	cfg := expertmem.ConfigFor(topo.ForGPUs(gpus), layers, experts, 16<<20, oversub,
		expertmem.AffinityPrefetch(), 4, 0, counts)
	return NewMemoryObjective(cfg, 0)
}

func TestPropertyAnnealBitIdenticalWhenMemoryInactive(t *testing.T) {
	// At oversubscription 0 (nil objective) and 1 (inactive objective) the
	// memory term is exactly zero and Anneal must walk the identical
	// trajectory: same RNG draws, same accepts, bit-identical output.
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		init := Contiguous(layers, experts, gpus)
		plain := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed})
		at1x := memObjectiveFor(counts, layers, experts, gpus, 1)
		if at1x.Active() || at1x.StallSeconds(plain) != 0 {
			return false
		}
		for _, mem := range []*MemoryObjective{nil, at1x} {
			out := Anneal(counts, init, AnnealOptions{Iterations: 1500, Seed: seed, Memory: mem})
			for j := range plain.Assign {
				for e := range plain.Assign[j] {
					if out.Assign[j][e] != plain.Assign[j][e] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMemoryObjectiveRelabelInvariant(t *testing.T) {
	// The stall term is a sum of per-GPU functions of the assigned sets, so
	// permuting GPU labels must not change it (up to summation order).
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		pl := Random(layers, experts, gpus, seed^0x77)
		perm := rng.New(seed ^ 0x1CE).Perm(gpus)
		relabeled := pl.Clone()
		for j := range relabeled.Assign {
			for e := range relabeled.Assign[j] {
				relabeled.Assign[j][e] = perm[pl.Assign[j][e]]
			}
		}
		a, b := mo.StallSeconds(pl), mo.StallSeconds(relabeled)
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMemoryAwareAnnealValidAndNonWorsening(t *testing.T) {
	// Under an active memory term the annealer must stay feasible and never
	// worsen its blended objective relative to the start.
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		mo := memObjectiveFor(counts, layers, experts, gpus, 2)
		init := Contiguous(layers, experts, gpus)
		out := Anneal(counts, init, AnnealOptions{Iterations: 2000, Seed: seed, Memory: mo})
		if out.Validate() != nil {
			return false
		}
		return mo.Objective(out, counts) <= mo.Objective(init, counts)+1e-9
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicalizeInvariants(t *testing.T) {
	// Canonicalization never changes the objective and never increases the
	// move count versus the raw diff.
	if err := quick.Check(func(seed uint64) bool {
		tr, layers, experts, gpus := randomInstance(seed)
		counts := tr.AllTransitionCounts()
		a := Random(layers, experts, gpus, seed)
		b := Random(layers, experts, gpus, seed^0x5555)
		canon := Canonicalize(a, b)
		if canon.Validate() != nil {
			return false
		}
		if canon.Crossings(counts) != b.Crossings(counts) {
			return false
		}
		return len(Diff(a, canon)) <= len(Diff(a, b))
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

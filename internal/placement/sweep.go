package placement

import (
	"repro/internal/assign"
)

// LayerSweepOptions tunes the coordinate-descent solver.
type LayerSweepOptions struct {
	// MaxSweeps bounds the number of full forward+backward passes.
	// Zero means 8.
	MaxSweeps int
	// Init is the starting placement; nil means Contiguous.
	Init *Placement
}

// LayerSweep solves the placement problem by coordinate descent over
// layers: holding all other layers fixed, the assignment of one layer's
// experts to GPUs that minimizes crossings with both neighbors is an exact
// balanced-transportation problem (each expert's cost of living on GPU g is
// the transition weight it would *fail* to keep local), solved by min-cost
// max-flow. Sweeps alternate forward and backward until the objective stops
// improving.
//
// Each single-layer step is optimal, so the objective is monotonically
// non-increasing and the procedure converges; the final result is a strong
// local optimum that the exact ILP certifies as globally optimal on small
// instances (see tests).
func LayerSweep(counts [][][]float64, layers, experts, gpus int, opts LayerSweepOptions) *Placement {
	checkShape(experts, gpus)
	maxSweeps := opts.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	var p *Placement
	if opts.Init != nil {
		p = opts.Init.Clone()
	} else {
		p = Contiguous(layers, experts, gpus)
	}
	cap := experts / gpus
	caps := make([]int, gpus)
	for g := range caps {
		caps[g] = cap
	}

	resolveLayer := func(j int) {
		// benefit[e][g]: transition weight kept local if expert e of layer j
		// sits on GPU g, given the fixed neighbor layers.
		benefit := make([][]float64, experts)
		for e := range benefit {
			benefit[e] = make([]float64, gpus)
		}
		if j > 0 {
			for from := 0; from < experts; from++ {
				g := p.Assign[j-1][from]
				for to, w := range counts[j-1][from] {
					if w != 0 {
						benefit[to][g] += w
					}
				}
			}
		}
		if j < layers-1 {
			for from := 0; from < experts; from++ {
				for to, w := range counts[j][from] {
					if w != 0 {
						benefit[from][p.Assign[j+1][to]] += w
					}
				}
			}
		}
		assignment, _, err := assign.MaximizeBalanced(benefit, caps)
		if err != nil {
			// Capacities always suffice by construction; this is a bug trap.
			panic(err)
		}
		copy(p.Assign[j], assignment)
	}

	prev := p.Crossings(counts)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		for j := 0; j < layers; j++ {
			resolveLayer(j)
		}
		for j := layers - 1; j >= 0; j-- {
			resolveLayer(j)
		}
		cur := p.Crossings(counts)
		if cur >= prev-1e-9 {
			break
		}
		prev = cur
	}
	return p
}

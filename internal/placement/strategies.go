package placement

import (
	"fmt"

	"repro/internal/affinity"
	"repro/internal/rng"
)

// checkShape panics unless experts divide evenly over GPUs.
func checkShape(experts, gpus int) {
	if gpus <= 0 || experts <= 0 {
		panic(fmt.Sprintf("placement: invalid shape E=%d P=%d", experts, gpus))
	}
	if experts%gpus != 0 {
		panic(fmt.Sprintf("placement: experts %d not divisible by gpus %d", experts, gpus))
	}
}

// Contiguous returns the Deepspeed-MoE default placement: expert e of every
// layer lives on GPU e / (E/P). This is the paper's baseline ("the baseline
// Deepspeed framework does not have any optimization on the placement of
// inter-layer experts").
func Contiguous(layers, experts, gpus int) *Placement {
	checkShape(experts, gpus)
	p := NewPlacement(layers, experts, gpus)
	cap := experts / gpus
	for j := 0; j < layers; j++ {
		for e := 0; e < experts; e++ {
			p.Assign[j][e] = e / cap
		}
	}
	return p
}

// Random returns a per-layer uniformly random balanced placement.
func Random(layers, experts, gpus int, seed uint64) *Placement {
	checkShape(experts, gpus)
	p := NewPlacement(layers, experts, gpus)
	cap := experts / gpus
	r := rng.New(seed)
	for j := 0; j < layers; j++ {
		perm := r.Perm(experts)
		for slot, e := range perm {
			p.Assign[j][e] = slot / cap
		}
	}
	return p
}

// Greedy builds a placement by chaining most-affiliated experts: layer 0 is
// contiguous; at each later layer, each GPU grabs (in order of that GPU's
// current outgoing probability mass) the still-unassigned experts its
// residents most strongly route to. This is the multi-expert generalization
// of the paper's Formula 2 local optimum and serves as the warm start for
// LayerSweep as well as a baseline in the solver ablation.
func Greedy(aff *affinity.Model, gpus int) *Placement {
	checkShape(aff.Experts, gpus)
	p := NewPlacement(aff.Layers, aff.Experts, gpus)
	cap := aff.Experts / gpus
	for e := 0; e < aff.Experts; e++ {
		p.Assign[0][e] = e / cap
	}
	for j := 1; j < aff.Layers; j++ {
		assigned := make([]bool, aff.Experts)
		count := make([]int, gpus)
		// Score every (gpu, expert) pair by the probability mass flowing
		// from the GPU's layer-(j-1) residents into the expert.
		type cand struct {
			gpu, expert int
			score       float64
		}
		var cands []cand
		for g := 0; g < gpus; g++ {
			srcs := p.ExpertsOn(j-1, g)
			for e := 0; e < aff.Experts; e++ {
				score := 0.0
				for _, s := range srcs {
					score += aff.Marginal[j-1][s] * aff.P(j-1, s, e)
				}
				cands = append(cands, cand{gpu: g, expert: e, score: score})
			}
		}
		// Repeatedly take the globally best remaining (gpu, expert) pair.
		// Simple selection sort style; instances are small (E*P pairs).
		for placed := 0; placed < aff.Experts; {
			best := -1
			for i, c := range cands {
				if assigned[c.expert] || count[c.gpu] >= cap {
					continue
				}
				if best == -1 || c.score > cands[best].score {
					best = i
				}
			}
			c := cands[best]
			p.Assign[j][c.expert] = c.gpu
			assigned[c.expert] = true
			count[c.gpu]++
			placed++
		}
	}
	return p
}

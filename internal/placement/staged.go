package placement

import (
	"fmt"

	"repro/internal/topo"
)

// Solve runs the production single-level pipeline: LayerSweep coordinate
// descent refined by simulated annealing. seed feeds the annealer.
func Solve(counts [][][]float64, layers, experts, gpus int, seed uint64) *Placement {
	return SolveMem(counts, layers, experts, gpus, seed, nil)
}

// SolveMem is Solve with an optional memory-aware objective: the sweep
// stays crossing-only (its transportation subproblem has no residency
// notion), and the annealing polish prices crossings plus expected
// expert-stall. A nil or inactive objective reproduces Solve bit-identically.
func SolveMem(counts [][][]float64, layers, experts, gpus int, seed uint64, mem *MemoryObjective) *Placement {
	p := LayerSweep(counts, layers, experts, gpus, LayerSweepOptions{})
	return Anneal(counts, p, AnnealOptions{Seed: seed, Memory: mem})
}

// StagedOptions tunes the two-stage hierarchical solve.
type StagedOptions struct {
	// Memory, when active, folds expected expert-stall cost into both
	// stages' annealing objective: the node stage sees each node as one
	// pooled HBM budget (GPUsPerNode * Slots), and each node's GPU stage
	// prices the real per-GPU budget over the node's residents.
	Memory *MemoryObjective
}

// Staged implements the paper's two-stage hierarchical optimization
// (Section IV-C / IV-D): because inter-node links are far slower than
// NVLink, stage 1 first minimizes *inter-node* transitions by solving the
// placement problem with one "GPU" per node (capacity C2 = E/nodes), and
// stage 2 then minimizes *intra-node* transitions by solving an independent
// subproblem inside each node, distributing that node's experts over its
// GPUs (capacity C1 = E/P). The objective function is identical in both
// stages — only what counts as a "crossing" changes — exactly as the paper
// applies Formula 8 top-down.
func Staged(counts [][][]float64, layers, experts int, tp *topo.Topology, seed uint64) *Placement {
	return StagedOpt(counts, layers, experts, tp, seed, StagedOptions{})
}

// StagedOpt is Staged with options (see StagedOptions). Zero options
// reproduce Staged bit-identically.
func StagedOpt(counts [][][]float64, layers, experts int, tp *topo.Topology, seed uint64, opts StagedOptions) *Placement {
	gpus := tp.TotalGPUs()
	checkShape(experts, gpus)
	if tp.Nodes == 1 {
		return SolveMem(counts, layers, experts, gpus, seed, opts.Memory)
	}
	if experts%tp.Nodes != 0 {
		panic(fmt.Sprintf("placement: experts %d not divisible by nodes %d", experts, tp.Nodes))
	}

	// Stage 1: place experts onto nodes, each node pooling its GPUs' HBM.
	nodePl := SolveMem(counts, layers, experts, tp.Nodes, seed, opts.Memory.group(tp.GPUsPerNode))

	// Stage 2: within each node, place its residents onto the node's GPUs.
	// Each node's subproblem only sees transition weight between experts
	// resident on the node in adjacent layers — transitions entering or
	// leaving the node already pay the inter-node price regardless of the
	// local GPU chosen (stage 1 fixed that), so they do not constrain
	// stage 2.
	final := NewPlacement(layers, experts, gpus)
	perGPU := experts / gpus
	for node := 0; node < tp.Nodes; node++ {
		// residents[j] = experts of layer j on this node (in index order).
		residents := make([][]int, layers)
		index := make([][]int, layers) // expert -> local slot, or -1
		for j := 0; j < layers; j++ {
			index[j] = make([]int, experts)
			for e := range index[j] {
				index[j][e] = -1
			}
			for e := 0; e < experts; e++ {
				if nodePl.Assign[j][e] == node {
					index[j][e] = len(residents[j])
					residents[j] = append(residents[j], e)
				}
			}
		}
		perNode := len(residents[0])
		// Restricted counts between consecutive layers' residents.
		sub := make([][][]float64, layers-1)
		for j := 0; j < layers-1; j++ {
			sub[j] = make([][]float64, perNode)
			for a := range sub[j] {
				sub[j][a] = make([]float64, perNode)
			}
			for _, from := range residents[j] {
				for _, to := range residents[j+1] {
					sub[j][index[j][from]][index[j+1][to]] = counts[j][from][to]
				}
			}
		}
		var subMem *MemoryObjective
		if opts.Memory.Active() {
			subMem = opts.Memory.restrict(residents)
		}
		subPl := SolveMem(sub, layers, perNode, tp.GPUsPerNode, seed+uint64(node)+1, subMem)
		for j := 0; j < layers; j++ {
			for slot, e := range residents[j] {
				final.Assign[j][e] = tp.Rank(node, subPl.Assign[j][slot])
			}
		}
	}
	// The construction guarantees balance: each node holds E/nodes experts
	// per layer and distributes them E/P per GPU.
	if perGPU*gpus != experts {
		panic("placement: internal balance accounting error")
	}
	return final
}

package placement

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/topo"
)

// SolveOptions tunes the single-level Solve pipeline.
type SolveOptions struct {
	// Seed feeds the annealer (and derives portfolio replica seeds).
	Seed uint64
	// Memory optionally folds expected expert-stall into the annealing
	// objective (see SolveMem).
	Memory *MemoryObjective
	// Workers is the annealing portfolio width (see AnnealOptions.Workers);
	// zero or one is the single-replica solve, bit-identical to Solve.
	Workers int
	// Obs optionally receives solver metrics (proposal/acceptance counters,
	// stage wall times). Nil costs nothing; metrics never affect the solve.
	Obs *obs.Registry
	// ReplicaBudget, when positive, finishes the pipeline with the
	// replicate/dereplicate refinement pass (see AnnealOptions.ReplicaBudget).
	// Zero reproduces the single-copy solve bit-identically.
	ReplicaBudget int
}

// Solve runs the production single-level pipeline: LayerSweep coordinate
// descent refined by simulated annealing. seed feeds the annealer.
func Solve(counts [][][]float64, layers, experts, gpus int, seed uint64) *Placement {
	return SolveOpt(counts, layers, experts, gpus, SolveOptions{Seed: seed})
}

// SolveMem is Solve with an optional memory-aware objective: the sweep
// stays crossing-only (its transportation subproblem has no residency
// notion), and the annealing polish prices crossings plus expected
// expert-stall. A nil or inactive objective reproduces Solve bit-identically.
func SolveMem(counts [][][]float64, layers, experts, gpus int, seed uint64, mem *MemoryObjective) *Placement {
	return SolveOpt(counts, layers, experts, gpus, SolveOptions{Seed: seed, Memory: mem})
}

// SolveOpt is the fully-optioned single-level pipeline: LayerSweep followed
// by an annealing polish that can run as a parallel portfolio. Zero options
// (beyond Seed) reproduce Solve bit-identically.
func SolveOpt(counts [][][]float64, layers, experts, gpus int, opts SolveOptions) *Placement {
	p := LayerSweep(counts, layers, experts, gpus, LayerSweepOptions{})
	return Anneal(counts, p, AnnealOptions{Seed: opts.Seed, Memory: opts.Memory, Workers: opts.Workers, Obs: opts.Obs, ReplicaBudget: opts.ReplicaBudget})
}

// StagedOptions tunes the two-stage hierarchical solve.
type StagedOptions struct {
	// Memory, when active, folds expected expert-stall cost into both
	// stages' annealing objective: the node stage sees each node as one
	// pooled HBM budget (GPUsPerNode * Slots), and each node's GPU stage
	// prices the real per-GPU budget over the node's residents.
	Memory *MemoryObjective
	// Workers is the annealing portfolio width applied to both stages (see
	// AnnealOptions.Workers), and additionally lets stage 2's independent
	// per-node subproblems run concurrently. Any fixed value is
	// deterministic; zero or one reproduces the serial solve bit-identically.
	Workers int
	// ReplicaBudget, when positive, finishes the staged pipeline with the
	// replicate/dereplicate refinement pass over the fully assembled
	// placement (never inside the node or per-node sub-solves, whose local
	// GPU numbering would not survive reassembly). Zero reproduces the
	// single-copy solve bit-identically.
	ReplicaBudget int
	// Obs optionally receives solver metrics: per-stage wall-time histograms
	// (solver_stage_node_seconds, solver_stage_gpu_seconds) and the annealer's
	// proposal/acceptance counters. Nil costs nothing; metrics never affect
	// the solve.
	Obs *obs.Registry
}

// Staged implements the paper's two-stage hierarchical optimization
// (Section IV-C / IV-D): because inter-node links are far slower than
// NVLink, stage 1 first minimizes *inter-node* transitions by solving the
// placement problem with one "GPU" per node (capacity C2 = E/nodes), and
// stage 2 then minimizes *intra-node* transitions by solving an independent
// subproblem inside each node, distributing that node's experts over its
// GPUs (capacity C1 = E/P). The objective function is identical in both
// stages — only what counts as a "crossing" changes — exactly as the paper
// applies Formula 8 top-down.
func Staged(counts [][][]float64, layers, experts int, tp *topo.Topology, seed uint64) *Placement {
	return StagedOpt(counts, layers, experts, tp, seed, StagedOptions{})
}

// StagedOpt is Staged with options (see StagedOptions). Zero options
// reproduce Staged bit-identically.
func StagedOpt(counts [][][]float64, layers, experts int, tp *topo.Topology, seed uint64, opts StagedOptions) *Placement {
	gpus := tp.TotalGPUs()
	checkShape(experts, gpus)
	if tp.Nodes == 1 {
		return SolveOpt(counts, layers, experts, gpus,
			SolveOptions{Seed: seed, Memory: opts.Memory, Workers: opts.Workers, Obs: opts.Obs, ReplicaBudget: opts.ReplicaBudget})
	}
	if experts%tp.Nodes != 0 {
		panic(fmt.Sprintf("placement: experts %d not divisible by nodes %d", experts, tp.Nodes))
	}

	// Stage 1: place experts onto nodes, each node pooling its GPUs' HBM.
	reg := opts.Obs
	nodeStart := reg.Now()
	nodePl := SolveOpt(counts, layers, experts, tp.Nodes,
		SolveOptions{Seed: seed, Memory: opts.Memory.group(tp.GPUsPerNode), Workers: opts.Workers, Obs: opts.Obs})
	reg.Histogram("solver_stage_node_seconds", obs.SecondsBuckets()).Observe(reg.Now() - nodeStart)
	gpuStageSeconds := reg.Histogram("solver_stage_gpu_seconds", obs.SecondsBuckets())

	// Stage 2: within each node, place its residents onto the node's GPUs.
	// Each node's subproblem only sees transition weight between experts
	// resident on the node in adjacent layers — transitions entering or
	// leaving the node already pay the inter-node price regardless of the
	// local GPU chosen (stage 1 fixed that), so they do not constrain
	// stage 2. The subproblems are fully independent (disjoint experts,
	// disjoint GPU ranks), so with Workers > 1 they solve concurrently.
	final := NewPlacement(layers, experts, gpus)
	perGPU := experts / gpus
	solveNode := func(node int) {
		nodeT0 := reg.Now()
		defer func() { gpuStageSeconds.Observe(reg.Now() - nodeT0) }()
		// residents[j] = experts of layer j on this node (in index order).
		residents := make([][]int, layers)
		index := make([][]int, layers) // expert -> local slot, or -1
		for j := 0; j < layers; j++ {
			index[j] = make([]int, experts)
			for e := range index[j] {
				index[j][e] = -1
			}
			for e := 0; e < experts; e++ {
				if nodePl.Assign[j][e] == node {
					index[j][e] = len(residents[j])
					residents[j] = append(residents[j], e)
				}
			}
		}
		// Stage 1 is balanced, so every layer holds experts/nodes residents;
		// size by the widest layer anyway so a hypothetical ragged resident
		// list degrades into zero-padded columns (matching restrict's
		// phantom-slot handling) instead of an out-of-range write.
		perNode := 0
		for _, res := range residents {
			if len(res) > perNode {
				perNode = len(res)
			}
		}
		// Restricted counts between consecutive layers' residents.
		sub := make([][][]float64, layers-1)
		for j := 0; j < layers-1; j++ {
			sub[j] = make([][]float64, perNode)
			for a := range sub[j] {
				sub[j][a] = make([]float64, perNode)
			}
			for _, from := range residents[j] {
				for _, to := range residents[j+1] {
					sub[j][index[j][from]][index[j+1][to]] = counts[j][from][to]
				}
			}
		}
		var subMem *MemoryObjective
		if opts.Memory.Active() {
			subMem = opts.Memory.restrict(residents)
		}
		subPl := SolveOpt(sub, layers, perNode, tp.GPUsPerNode,
			SolveOptions{Seed: seed + uint64(node) + 1, Memory: subMem, Workers: opts.Workers, Obs: opts.Obs})
		for j := 0; j < layers; j++ {
			for slot, e := range residents[j] {
				final.Assign[j][e] = tp.Rank(node, subPl.Assign[j][slot])
			}
		}
	}
	if opts.Workers > 1 {
		var wg sync.WaitGroup
		for node := 0; node < tp.Nodes; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				solveNode(node)
			}(node)
		}
		wg.Wait()
	} else {
		for node := 0; node < tp.Nodes; node++ {
			solveNode(node)
		}
	}
	// The construction guarantees balance: each node holds E/nodes experts
	// per layer and distributes them E/P per GPU.
	if perGPU*gpus != experts {
		panic("placement: internal balance accounting error")
	}
	return applyReplicaBudget(counts, final, opts.ReplicaBudget, seed, opts.Memory, nil)
}

package placement

// TransIndex is a CSR/CSC view of the nonzero inter-layer expert
// transitions of a counts tensor. At realistic top-k routing the dense
// [E][E] transition matrices are overwhelmingly zero (each expert hands
// tokens to a handful of affine successors), so the annealer's per-proposal
// re-pricing — which only ever needs the actual successors and predecessors
// of the two swapped experts — wastes almost all of its time skipping
// zeros. The index stores, per adjacent layer pair, both orientations:
//
//   - succ (CSR): for each `from` expert, its nonzero (to, weight) entries
//     in ascending `to` order — the row counts[j][from].
//   - pred (CSC): for each `to` expert, its nonzero (from, weight) entries
//     in ascending `from` order — the column counts[j][·][to].
//
// Entry order matters beyond cache friendliness: it is exactly the order
// the dense scans visit nonzeros, so every floating-point accumulation the
// index drives (Crossings, the annealer's layerDelta) reproduces the dense
// result bit for bit — sparse and dense solves walk identical trajectories.
//
// The index is immutable after construction and safe for concurrent use by
// portfolio replicas.
type TransIndex struct {
	Layers, Experts int
	pairs           []transPair // one per adjacent layer pair present in counts
}

// transPair indexes one layer pair's nonzero transitions both ways.
type transPair struct {
	succStart []int32 // len Experts+1; row e spans succ[succStart[e]:succStart[e+1]]
	succTo    []int32
	succW     []float64
	predStart []int32 // len Experts+1; column e spans pred[predStart[e]:predStart[e+1]]
	predFrom  []int32
	predW     []float64
}

// NewTransIndex builds the sparse index for a counts tensor, shaped for a
// (layers, experts) placement problem. Cost is O(nnz + L*E) — one pass to
// size the offset arrays and one to fill them — amortized over the tens of
// thousands of proposals a solve prices against it.
func NewTransIndex(counts [][][]float64, layers, experts int) *TransIndex {
	npairs := layers - 1
	if len(counts) < npairs {
		npairs = len(counts)
	}
	if npairs < 0 {
		npairs = 0
	}
	ix := &TransIndex{Layers: layers, Experts: experts, pairs: make([]transPair, npairs)}
	for j := 0; j < npairs; j++ {
		pair := &ix.pairs[j]
		pair.succStart = make([]int32, experts+1)
		pair.predStart = make([]int32, experts+1)
		rows := len(counts[j])
		if rows > experts {
			rows = experts
		}
		nnz := 0
		for from := 0; from < rows; from++ {
			for to, w := range counts[j][from] {
				if w != 0 {
					nnz++
					pair.succStart[from+1]++
					pair.predStart[to+1]++
				}
			}
		}
		for e := 0; e < experts; e++ {
			pair.succStart[e+1] += pair.succStart[e]
			pair.predStart[e+1] += pair.predStart[e]
		}
		pair.succTo = make([]int32, nnz)
		pair.succW = make([]float64, nnz)
		pair.predFrom = make([]int32, nnz)
		pair.predW = make([]float64, nnz)
		succFill := make([]int32, experts)
		predFill := make([]int32, experts)
		// Filling in (from asc, to asc) scan order leaves every CSR row in
		// ascending `to` order and every CSC column in ascending `from`
		// order — the dense scan order the bit-identity guarantee needs.
		for from := 0; from < rows; from++ {
			for to, w := range counts[j][from] {
				if w == 0 {
					continue
				}
				si := pair.succStart[from] + succFill[from]
				pair.succTo[si], pair.succW[si] = int32(to), w
				succFill[from]++
				pi := pair.predStart[to] + predFill[to]
				pair.predFrom[pi], pair.predW[pi] = int32(from), w
				predFill[to]++
			}
		}
	}
	return ix
}

// NNZ returns the total nonzero transition count across all layer pairs.
func (ix *TransIndex) NNZ() int {
	n := 0
	for j := range ix.pairs {
		n += len(ix.pairs[j].succW)
	}
	return n
}

// Crossings evaluates the paper's objective (Formula 8) over the index:
// identical to Placement.Crossings on the counts the index was built from
// — bit for bit, because the nonzeros are visited in the same order — but
// touching only nonzero entries.
func (ix *TransIndex) Crossings(p *Placement) float64 {
	total := 0.0
	npairs := len(ix.pairs)
	if p.Layers-1 < npairs {
		npairs = p.Layers - 1
	}
	for j := 0; j < npairs; j++ {
		pair := &ix.pairs[j]
		next := p.Assign[j+1]
		for from := 0; from < ix.Experts; from++ {
			gFrom := p.Assign[j][from]
			for i := pair.succStart[from]; i < pair.succStart[from+1]; i++ {
				if gFrom != next[pair.succTo[i]] {
					total += pair.succW[i]
				}
			}
		}
	}
	return total
}

// layerDelta returns the annealer's incremental move-pricing closure over
// the index: the change in crossings if experts a and b of layer j swapped
// GPUs under p. Each call is O(deg(a) + deg(b)) — the two experts' actual
// predecessor and successor counts — instead of the dense O(E) column scan.
// The accumulation order matches the dense reference exactly (predecessors
// in ascending `from`, successors in ascending `to`, a before b), so sparse
// and dense anneals accept identical move sequences.
func (ix *TransIndex) layerDelta(p *Placement) func(j, a, b int) float64 {
	return func(j, a, b int) float64 {
		ga, gb := p.Assign[j][a], p.Assign[j][b]
		if ga == gb {
			return 0
		}
		delta := 0.0
		contrib := func(e, gOld, gNew int) {
			if j > 0 && j-1 < len(ix.pairs) {
				pair := &ix.pairs[j-1]
				prev := p.Assign[j-1]
				for i := pair.predStart[e]; i < pair.predStart[e+1]; i++ {
					w := pair.predW[i]
					gFrom := prev[pair.predFrom[i]]
					if gFrom != gOld {
						delta -= w
					}
					if gFrom != gNew {
						delta += w
					}
				}
			}
			if j < p.Layers-1 && j < len(ix.pairs) {
				pair := &ix.pairs[j]
				next := p.Assign[j+1]
				for i := pair.succStart[e]; i < pair.succStart[e+1]; i++ {
					w := pair.succW[i]
					gTo := next[pair.succTo[i]]
					if gOld != gTo {
						delta -= w
					}
					if gNew != gTo {
						delta += w
					}
				}
			}
		}
		contrib(a, ga, gb)
		contrib(b, gb, ga)
		return delta
	}
}

package placement

import "math"

// Fast exp(-x) for the Che pricer hot loop (ROADMAP item 4). Every Newton
// evaluation and every stall sum calls exp(-mass*T) once per assigned item,
// so the anneal's per-proposal cost is dominated by the libm Exp call. The
// table-plus-cubic path below decomposes x = i*h + r with h = 1/64 and a
// precomputed tab[i] = exp(-i*h), finishing with the degree-3 Taylor tail
// for exp(-r), r < 1/64 — the truncation error is below r^4/24 ≈ 2.5e-9
// relative, i.e. well under the 1e-8 bound across the whole range, which
// TestFastExpNegBoundedError pins against math.Exp. Arguments past the
// table (x >= 64, where exp(-x) < 2e-28 and nothing the objective sums can
// resolve it) fall back to math.Exp, as do non-finite inputs.
//
// cheExactExp routes every call back to math.Exp — the reference path the
// bounded-error property test compares whole-solve results against.

// expNegStep is the table spacing; expNegTable[i] = exp(-i*expNegStep).
const expNegStep = 1.0 / 64

// expNegMax is the largest tabled argument.
const expNegMax = 64.0

var expNegTable = func() []float64 {
	n := int(expNegMax/expNegStep) + 2
	t := make([]float64, n)
	for i := range t {
		t[i] = math.Exp(-float64(i) * expNegStep)
	}
	return t
}()

// cheExactExp selects the exact math.Exp path for the Che pricer; the
// bounded-error property suite flips it to compare solves.
var cheExactExp = false

// expNeg returns exp(-x) for x >= 0 via the table path.
func expNeg(x float64) float64 {
	if cheExactExp || x >= expNegMax || !(x >= 0) {
		return math.Exp(-x)
	}
	i := int(x * (1 / expNegStep))
	r := x - float64(i)*expNegStep
	// exp(-r) ≈ 1 - r + r²/2 - r³/6 for r in [0, 1/64).
	return expNegTable[i] * (1 - r*(1-r*(0.5-r*(1.0/6))))
}

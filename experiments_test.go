package exflow

import (
	"strings"
	"testing"
)

// fastOpts shrinks every experiment to smoke-test scale.
var fastOpts = ExperimentOptions{Scale: 0.08, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "table3", "fig14_16",
		"ablation_coherence", "ablation_solvers", "ablation_staged", "ablation_replication",
		"ablation_top2", "ablation_capacity", "ablation_hierarchical",
		"ablation_learnedgate", "ablation_migration", "serving_latency",
		"serving_adaptive", "expert_memory", "placement_memory",
	}
	have := map[string]bool{}
	for _, id := range Experiments() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", fastOpts); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	// Every registered experiment must run at reduced scale and produce
	// renderable, non-empty output. Heavier shape assertions follow in the
	// targeted tests below.
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := RunExperiment(id, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Fatalf("result id %q", res.ID)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if len(res.Tables) == 0 && len(res.Heat) == 0 {
				t.Fatal("experiment produced no tables or heatmaps")
			}
			if csv := res.CSV(); !strings.Contains(csv, ",") {
				t.Fatal("CSV output malformed")
			}
		})
	}
}

func TestFig2ShowsConcentration(t *testing.T) {
	res, err := RunExperiment("fig2", ExperimentOptions{Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heat) != 4 {
		t.Fatalf("fig2 should emit 4 heatmaps, got %d", len(res.Heat))
	}
	for _, h := range res.Heat {
		if f := h.DominantColumnFraction(3); f < 0.3 {
			t.Fatalf("heatmap %q lacks affinity concentration: top-3 mass %v", h.Title, f)
		}
	}
}

func TestFig7LocalityShape(t *testing.T) {
	res, err := RunExperiment("fig7", ExperimentOptions{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	var base, exf *seriesRef
	for _, s := range tb.SeriesL {
		switch s.Name {
		case "deepspeed":
			base = &seriesRef{x: s.X, y: s.Y}
		case "exflow-affinity":
			exf = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if base == nil || exf == nil {
		t.Fatal("missing series")
	}
	for i := range base.x {
		if base.x[i] == 1 {
			continue // single GPU: both are 100% local
		}
		if exf.y[i] <= base.y[i] {
			t.Fatalf("at %v GPUs exflow locality %v not above baseline %v", base.x[i], exf.y[i], base.y[i])
		}
	}
}

type seriesRef struct{ x, y []float64 }

func TestFig9AlltoallShareMonotone(t *testing.T) {
	res, err := RunExperiment("fig9", ExperimentOptions{Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var a2a *seriesRef
	for _, s := range res.Tables[0].SeriesL {
		if s.Name == "alltoall" {
			a2a = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if a2a == nil {
		t.Fatal("missing alltoall series")
	}
	for i := 1; i < len(a2a.y); i++ {
		if a2a.y[i] <= a2a.y[i-1] {
			t.Fatalf("alltoall share not increasing with nodes: %v", a2a.y)
		}
	}
	if a2a.y[0] > 0.5 {
		t.Fatalf("single-node alltoall share %v too high (paper ~15%%)", a2a.y[0])
	}
	if last := a2a.y[len(a2a.y)-1]; last < 0.5 {
		t.Fatalf("8-node alltoall share %v too low (paper ~76%%)", last)
	}
}

func TestFig10SpeedupsAboveOne(t *testing.T) {
	res, err := RunExperiment("fig10", ExperimentOptions{Scale: 0.12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var exf *seriesRef
	for _, s := range res.Tables[0].SeriesL {
		if s.Name == "exflow-affinity" {
			exf = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if exf == nil {
		t.Fatal("missing exflow series")
	}
	above := 0
	for _, v := range exf.y {
		if v > 1 {
			above++
		}
	}
	if above < len(exf.y)*2/3 {
		t.Fatalf("exflow should beat the baseline on most configs; only %d/%d did", above, len(exf.y))
	}
}

func TestTable3NearUnity(t *testing.T) {
	res, err := RunExperiment("table3", ExperimentOptions{Scale: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Tables[0].SeriesL {
		for i, v := range s.Y {
			if v < 0.85 || v > 1.15 {
				t.Fatalf("series %s point %d = %v; OOD locality should be near 1.0", s.Name, i, v)
			}
		}
	}
}

func TestFig13SpeedupSaturates(t *testing.T) {
	res, err := RunExperiment("fig13", ExperimentOptions{Scale: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Tables[0].SeriesL {
		if len(s.Y) < 2 {
			t.Fatal("series too short")
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last < 1 {
			t.Fatalf("series %s: full-budget speedup %v below 1", s.Name, last)
		}
		if last < first-0.05 {
			t.Fatalf("series %s: speedup should not degrade with more tokens (%v -> %v)", s.Name, first, last)
		}
	}
}

func TestFig11ImbalanceFalls(t *testing.T) {
	res, err := RunExperiment("fig11", ExperimentOptions{Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res.Tables {
		for _, s := range tb.SeriesL {
			if s.Name != "imbalance-gini" {
				continue
			}
			if s.Y[0] <= s.Y[len(s.Y)-1] {
				t.Fatalf("%s: imbalance should fall during training (%v -> %v)", tb.Title, s.Y[0], s.Y[len(s.Y)-1])
			}
		}
	}
}

func TestFig12DipThenClimb(t *testing.T) {
	res, err := RunExperiment("fig12", ExperimentOptions{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Early phase (table 0): the minimum lies strictly inside the window.
	for _, s := range res.Tables[0].SeriesL {
		minIdx := 0
		for i, v := range s.Y {
			if v < s.Y[minIdx] {
				minIdx = i
			}
		}
		if minIdx == 0 {
			t.Fatalf("series %s: affinity should start high and dip (min at start)", s.Name)
		}
	}
	// Late phase (table 1): last >= first (steady climb).
	for _, s := range res.Tables[1].SeriesL {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Fatalf("series %s: late-phase affinity should climb", s.Name)
		}
	}
}

func TestServingAdaptiveRecovers(t *testing.T) {
	t.Parallel()
	res, err := RunExperiment("serving_adaptive", ExperimentOptions{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("experiment produced no tables; notes: %v", res.Notes)
	}
	var st, ad *seriesRef
	for _, s := range res.Tables[0].SeriesL {
		switch s.Name {
		case "static-p95":
			st = &seriesRef{x: s.X, y: s.Y}
		case "adaptive-p95":
			ad = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if st == nil || ad == nil || len(st.y) != 3 || len(ad.y) != 3 {
		t.Fatal("era table malformed")
	}
	// Era 2 is the drift tail, after the adaptive fleet has re-placed and
	// settled: it must not serve worse than the static fleet there.
	if ad.y[2] > st.y[2] {
		t.Fatalf("adaptive drift-tail P95 %v worse than static %v", ad.y[2], st.y[2])
	}
	migrated := false
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "migration @") {
			migrated = true
		}
	}
	if !migrated {
		t.Fatal("adaptive fleet should have migrated under drift")
	}
}

func TestPlacementMemoryExperiment(t *testing.T) {
	t.Parallel()
	res, err := RunExperiment("placement_memory", ExperimentOptions{Scale: 0.15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical := false
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "1x: memory term inactive") {
			bitIdentical = true
		}
		if strings.HasPrefix(n, "WARNING") {
			t.Fatalf("experiment flagged a broken invariant: %s", n)
		}
	}
	if !bitIdentical {
		t.Fatalf("1x bit-identical note missing; notes: %v", res.Notes)
	}
	// Table 2 is the objective-predicted stall: the memory-aware solve must
	// never predict worse than crossing-only on its own objective.
	var cross, aware *seriesRef
	for _, s := range res.Tables[2].SeriesL {
		switch s.Name {
		case "crossing-only":
			cross = &seriesRef{x: s.X, y: s.Y}
		case "memory-aware":
			aware = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if cross == nil || aware == nil {
		t.Fatal("predicted-stall table malformed")
	}
	for i := range cross.x {
		if aware.y[i] > cross.y[i]+1e-12 {
			t.Fatalf("at %vx the memory-aware solve predicts more stall than crossing-only: %v vs %v",
				cross.x[i], aware.y[i], cross.y[i])
		}
	}
}

func TestAblationSolversOrdering(t *testing.T) {
	res, err := RunExperiment("ablation_solvers", ExperimentOptions{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	y := res.Tables[0].SeriesL[0].Y
	// strategy order: contiguous, random, greedy, layersweep, sweep+anneal.
	sweep, full := y[3], y[4]
	if full > sweep+1e-9 {
		t.Fatalf("anneal must not worsen the sweep result: %v vs %v", full, sweep)
	}
	if full >= y[0] || full >= y[1] {
		t.Fatalf("solver should beat contiguous (%v) and random (%v), got %v", y[0], y[1], full)
	}
}

package exflow

import (
	"repro/internal/affinity"
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/topo"
	"repro/internal/train"
)

func init() {
	register("ablation_learnedgate", runAblationLearnedGate)
}

// runAblationLearnedGate re-derives the paper's affinity story end to end
// from a *trained* gate instead of the synthetic kernel: a softmax gate is
// trained with cross-entropy + GShard auxiliary loss against an
// affinity-bearing teacher, and we track — across training checkpoints —
// the emergent affinity concentration, the placement solver's exploitable
// gain, and finally an inference run showing that ExFlow accelerates the
// learned router too.
func runAblationLearnedGate(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_learnedgate", Title: "Ablation: affinity emerging in a trained gate (CE + GShard aux loss)"}
	layers, experts, gpus := 6, 16, 4
	tr := train.New(train.Config{Layers: layers, Experts: experts, Seed: opts.Seed})
	traceTokens := opts.scaled(2500, 400)

	tb := newTableHelper(res, "learned-gate affinity across training", "steps")
	sAcc := tb.NewSeries("teacher-accuracy")
	sConc := tb.NewSeries("top2-concentration")
	sGain := tb.NewSeries("placement-gain")
	checkpoints := []int{0, 25, 50, 100, 200, 400}
	prev := 0
	for _, step := range checkpoints {
		tr.TrainSteps(step - prev)
		prev = step
		student := tr.TraceStudent(traceTokens, 7)
		aff := affinity.Estimate(student)
		counts := student.AllTransitionCounts()
		base := placement.Contiguous(layers, experts, gpus).Crossings(counts)
		solved := placement.Solve(counts, layers, experts, gpus, opts.Seed).Crossings(counts)
		gain := 1.0
		if solved > 0 {
			gain = base / solved
		}
		sAcc.Add(float64(step), tr.Accuracy(150))
		sConc.Add(float64(step), aff.Concentration(2))
		sGain.Add(float64(step), gain)
	}
	res.AddNote("uniform-routing top-2 concentration floor: %.3f", 2.0/float64(experts))

	// End-to-end: the engine running on the learned router still gains from
	// affinity placement.
	cfg := moe.GPTM(experts)
	cfg.Layers = layers
	mdl := moe.NewModel(cfg, opts.Seed)
	router := tr.StudentRouter()
	tp := topo.ForGPUs(8)
	studentTrace := tr.TraceStudent(traceTokens, 99)
	pl := placement.Staged(studentTrace.AllTransitionCounts(), layers, experts, tp, opts.Seed)
	mk := func(mode engine.Mode, p *placement.Placement) *engine.Report {
		return engine.Run(engine.Config{
			Model: mdl, Router: router, Topo: tp, Placement: p, Mode: mode,
			Cost:           moe.DefaultCostModel(),
			RequestsPerGPU: opts.scaled(8, 2), PromptLen: 8,
			GenerateTokens: opts.scaled(3, 2), Seed: opts.Seed,
		})
	}
	base := mk(engine.Vanilla, placement.Contiguous(layers, experts, 8))
	exf := mk(engine.ExFlow, pl)
	res.AddNote("end-to-end on the learned gate: exflow %.2fx over vanilla (local dispatches %.1f%% vs %.1f%%)",
		exf.Throughput/base.Throughput, exf.FracDispatchLocal()*100, base.FracDispatchLocal()*100)
	res.AddNote("the affinity ExFlow exploits is not an artifact of the synthetic kernel: it emerges from gradient training whenever expert choices shape later hidden states")
	return res
}

package exflow

import (
	"repro/internal/affinity"
	"repro/internal/moe"
)

// fig2Layers gives the profiled model 13 MoE layers so the paper's deepest
// heatmap pair (layer 11 -> layer 12) exists.
const fig2Layers = 13

func fig2Model() moe.Config {
	cfg := moe.GPTM(32)
	cfg.Name = "GPT-M/32E (fig2)"
	cfg.Layers = fig2Layers
	return cfg
}

func init() {
	register("fig2", runFig2)
	register("fig14_16", runFig14to16)
}

// runFig2 reproduces Fig 2: heatmaps of the conditional probability of
// expert routing between four pairs of consecutive layers of a pre-trained
// GPT MoE-32 model, showing that "for each row only a few columns are red".
func runFig2(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig2", Title: "Inter-layer expert routing preference heatmaps (GPT 350M MoE-32)"}
	sys := NewSystem(SystemOptions{Model: fig2Model(), GPUs: 4, Seed: opts.Seed})
	tr := sys.Profile(opts.scaled(20000, 2000))

	pairs := [][2]int{{0, 1}, {3, 4}, {7, 8}, {11, 12}}
	for _, p := range pairs {
		res.Heat = append(res.Heat, affinity.PairHeatmap(tr, p[0], p[1]))
	}
	aff := affinity.Estimate(tr)
	res.AddNote("mean top-3 column mass per row across consecutive layers: %.3f (paper: visibly few red columns per row; uniform routing would give %.3f)",
		aff.Concentration(3), 3.0/float64(tr.Experts))
	res.AddNote("tokens profiled: %d", tr.Tokens())
	return res
}

// runFig14to16 reproduces the appendix Figs 14-16: affinity between every
// layer i and every later layer j of the 13-layer MoE-32 model, summarized
// as the top-3 column mass of each (i, j) conditional matrix (consecutive
// pairs are sharpest; affinity decays but persists with layer distance).
func runFig14to16(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig14_16", Title: "Affinity between layer i and all later layers (top-3 column mass grid)"}
	sys := NewSystem(SystemOptions{Model: fig2Model(), GPUs: 4, Seed: opts.Seed})
	tr := sys.Profile(opts.scaled(20000, 2000))

	grid := make([][]float64, fig2Layers-1)
	for i := 0; i < fig2Layers-1; i++ {
		grid[i] = make([]float64, fig2Layers)
		for j := i + 1; j < fig2Layers; j++ {
			h := affinity.PairHeatmap(tr, i, j)
			grid[i][j] = h.DominantColumnFraction(3)
		}
	}
	heat := newGridHeatmap("top-3 affinity mass, rows = layer i, cols = layer j (upper triangle)", grid)
	res.Heat = append(res.Heat, heat)

	tb := newTableHelper(res, "affinity decay with layer distance", "distance")
	s := tb.NewSeries("mean top-3 mass")
	for d := 1; d < fig2Layers; d++ {
		total, n := 0.0, 0
		for i := 0; i+d < fig2Layers; i++ {
			total += grid[i][i+d]
			n++
		}
		s.Add(float64(d), total/float64(n))
	}
	res.AddNote("consecutive-layer affinity is strongest and decays smoothly with distance, matching the appendix grids")
	res.AddNote("uniform-routing floor for top-3 mass: %.3f", 3.0/32.0)
	// Include two sample long-range heatmaps for visual comparison.
	res.Heat = append(res.Heat, affinity.PairHeatmap(tr, 0, 6), affinity.PairHeatmap(tr, 0, 12))
	return res
}

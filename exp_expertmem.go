package exflow

import (
	"fmt"

	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/stats"
)

func init() {
	register("expert_memory", runExpertMemory)
}

// MemoryRun is one cell of the oversubscription sweep: a serving run under
// tiered expert-weight memory at a given (ratio, policy).
type MemoryRun struct {
	Ratio  float64
	Policy string
	Report *ServeReport
}

// MemorySweepRatios is the oversubscription sweep the experiment and the
// CLI share: 1x (everything resident) through 4x (a quarter fits).
var MemorySweepRatios = []float64{1, 1.5, 2, 4}

// ProbeMemoryCapacity estimates a configuration's sustainable token
// throughput by saturating it briefly: at several times the 1x capacity the
// queue never drains, so served tokens per second approximate the service
// capacity under that oversubscription ratio and policy.
func ProbeMemoryCapacity(sys *System, base ServeOptions, ratio float64, dur float64) (float64, error) {
	cal := base.Calibration
	if cal == nil {
		var err error
		if cal, err = CalibrateServe(sys, base); err != nil {
			return 0, err
		}
	}
	o := base
	o.Adaptive = false
	o.Oversubscription = ratio
	o.CachePolicy = "affinity"
	o.Calibration = cal
	o.Phases = []ServePhase{{Name: "probe", Duration: dur, Rate: 3 * cal.Metrics.RequestCapacity}}
	rep, _, err := Serve(sys, o)
	if err != nil {
		return 0, err
	}
	if rep.Makespan <= 0 {
		return 0, fmt.Errorf("exflow: capacity probe served nothing")
	}
	return float64(rep.Tokens) / rep.Makespan, nil
}

// runExpertMemory sweeps oversubscription ratios and cache policies over a
// steady serving workload. Each ratio is provisioned at 70% of its own
// probed capacity (as an operator would), every policy at a ratio sees the
// identical arrival stream, and a memory-disabled baseline pins down the
// 1x-adds-no-overhead guarantee.
func runExpertMemory(opts ExperimentOptions) *Result {
	res := &Result{ID: "expert_memory", Title: "Tiered expert-weight memory: policies across oversubscription ratios"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(12, 8)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed + 11, DomainTilt: servingDomainTilt})

	dur := float64(opts.scaled(20, 4))
	base := ServeOptions{
		Replicas:      2,
		DecodeTokens:  32,
		ProfileTokens: opts.scaled(3000, 2500),
		LatencyBucket: dur / 40,
	}
	cal, err := CalibrateServe(sys, base)
	if err != nil {
		res.AddNote("serve calibration failed: %v", err)
		return res
	}
	base.Calibration = cal

	steady := func(rate float64) []ServePhase {
		return []ServePhase{{Name: "steady", Duration: dur, Rate: rate}}
	}
	run := func(ratio float64, policy string, rate float64) *ServeReport {
		o := base
		o.Oversubscription = ratio
		o.CachePolicy = policy
		o.Phases = steady(rate)
		rep, _, err := Serve(sys, o)
		if err != nil {
			res.AddNote("serve at %.1fx/%s failed: %v", ratio, policy, err)
			return nil
		}
		return rep
	}

	baseRate := 0.7 * cal.Metrics.RequestCapacity
	disabled := run(0, "", baseRate)
	if disabled == nil {
		return res
	}

	tbHit := newTableHelper(res, "expert hit rate by oversubscription ratio", "oversub-ratio")
	tbP95 := newTableHelper(res, "overall P95 request latency (s) by oversubscription ratio", "oversub-ratio")
	tbStall := newTableHelper(res, "expert-miss stall (clock-charged) seconds per served token", "oversub-ratio")
	series := map[string][3]*stats.Series{}
	for _, pol := range expertmem.PolicyNames() {
		series[pol] = [3]*stats.Series{tbHit.NewSeries(pol), tbP95.NewSeries(pol), tbStall.NewSeries(pol)}
	}

	// The experiment sweeps a subset of the CLI's ratios (the 1.5x point
	// adds little beyond runtime at smoke scales; `exflow-serve -oversub`
	// covers the full grid).
	ratios := []float64{1, 2, 4}
	var at2x map[string]*ServeReport
	var oneXP95 float64
	for _, ratio := range ratios {
		rate := baseRate
		if ratio > 1 {
			capTok, err := ProbeMemoryCapacity(sys, base, ratio, dur/4)
			if err != nil {
				res.AddNote("capacity probe at %.1fx failed: %v", ratio, err)
				continue
			}
			rate = 0.7 * capTok / float64(base.DecodeTokens)
		}
		reps := map[string]*ServeReport{}
		policies := expertmem.PolicyNames()
		if ratio == 1 {
			// At 1x every expert is resident and the policy can never act:
			// one run stands for all four table columns.
			policies = []string{"affinity"}
		}
		for _, pol := range policies {
			rep := run(ratio, pol, rate)
			if rep == nil {
				continue
			}
			reps[pol] = rep
			hit := rep.ExpertMem.HitRate()
			if rep.ExpertMem.Accesses == 0 {
				hit = 1 // no paging: everything resident by construction
			}
			record := []string{pol}
			if ratio == 1 {
				record = expertmem.PolicyNames()
			}
			for _, name := range record {
				s := series[name]
				s[0].Add(ratio, hit)
				s[1].Add(ratio, rep.Overall.P95)
				s[2].Add(ratio, rep.MemStallSeconds/float64(rep.Tokens))
			}
		}
		if ratio == 2 {
			at2x = reps
		}
		if ratio == 1 {
			if rep := reps["affinity"]; rep != nil {
				oneXP95 = rep.Overall.P95
				if rep.Makespan == disabled.Makespan && rep.Overall.P95 == disabled.Overall.P95 {
					res.AddNote("1x oversubscription is free: memory layer reproduces the disabled baseline exactly (P95 %.4fs, makespan %.2fs)",
						rep.Overall.P95, rep.Makespan)
				} else {
					res.AddNote("WARNING: 1x memory layer deviates from the disabled baseline (P95 %.4fs vs %.4fs)",
						rep.Overall.P95, disabled.Overall.P95)
				}
			}
		}
	}

	if aff, lru := at2x["affinity"], at2x["lru"]; aff != nil && lru != nil {
		res.AddNote("2x oversubscription: affinity-prefetch hit rate %.1f%% vs LRU %.1f%%, P95 %.3fs vs %.3fs (1x P95 %.3fs)",
			aff.ExpertMem.HitRate()*100, lru.ExpertMem.HitRate()*100,
			aff.Overall.P95, lru.Overall.P95, oneXP95)
		res.AddNote("2x affinity prefetcher: %d prefetches, %d hits, %d wasted; %d residency evictions",
			aff.ExpertMem.Prefetches, aff.ExpertMem.PrefetchHits, aff.ExpertMem.WastedPrefetches, aff.ExpertMem.Evictions)
	}
	res.AddNote("each ratio provisioned at 70%% of its own probed capacity; identical arrivals per ratio across policies")
	return res
}

package exflow

// Solver benchmarks: the sparse-vs-dense annealing hot path and the
// parallel solve portfolio, at the same scale as BenchmarkMemoryAwareAnneal.
// TestGenerateSolverBench (gated on SOLVER_BENCH=1) measures them with its
// own timer and writes BENCH_solver.json — the machine-readable record CI
// uploads as an artifact.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/obs"
	"repro/internal/placement"
)

// solverBenchFixture is the shared solver-benchmark instance: gptm-32 at 16
// layers on 8 GPUs, 3000 profiled tokens, 2x oversubscription — the default
// scale of BenchmarkMemoryAwareAnneal since PR 3.
func solverBenchFixture(tb testing.TB) (counts [][][]float64, mo *placement.MemoryObjective, init *placement.Placement, cfg moe.Config) {
	tb.Helper()
	cfg = moe.GPTM(32)
	cfg.Layers = 16
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: 1})
	tr := sys.Profile(3000)
	counts = tr.AllTransitionCounts()
	pol, err := expertmem.ParsePolicy("affinity")
	if err != nil {
		tb.Fatal(err)
	}
	mcfg := expertmem.ConfigFor(sys.Topo, cfg.Layers, cfg.Experts, int(cfg.ExpertParams())*2,
		2, pol, 4, 0, counts)
	mo = placement.NewMemoryObjective(mcfg, 0)
	init = placement.Contiguous(cfg.Layers, cfg.Experts, 8)
	return counts, mo, init, cfg
}

// BenchmarkMemoryAwareAnnealDense is the dense reference path: O(E) column
// scans per proposal plus a copy+sort residency re-price per swap — what
// the solver hot path was before the sparse TransIndex and sortedMemState.
// Compare against BenchmarkMemoryAwareAnneal (the sparse default).
func BenchmarkMemoryAwareAnnealDense(b *testing.B) {
	counts, mo, init, _ := solverBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = placement.Anneal(counts, init, placement.AnnealOptions{Seed: uint64(i), Memory: mo, Dense: true})
	}
}

// BenchmarkMemoryAwareAnnealChe is the Che-residency anneal: the same
// instance and sparse crossing path as BenchmarkMemoryAwareAnneal, but every
// swap re-prices the two affected GPUs' fractional-occupancy stall with a
// warm-started Newton solve instead of a warm-set tail sum. The comparison
// quantifies what the dynamic-residency model costs on the solver hot path.
func BenchmarkMemoryAwareAnnealChe(b *testing.B) {
	counts, mo, init, _ := solverBenchFixture(b)
	che := *mo
	che.Model = placement.ResidencyChe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = placement.Anneal(counts, init, placement.AnnealOptions{Seed: uint64(i), Memory: &che})
	}
}

// BenchmarkAnnealPortfolio measures the parallel solve portfolio at widths
// 1/2/4/8: N independently seeded annealing replicas race and the best
// blended objective wins. Wall-clock per op divided by Workers is the
// per-replica cost; on a machine with Workers free cores it stays near the
// Workers=1 wall-clock (near-linear scaling).
func BenchmarkAnnealPortfolio(b *testing.B) {
	counts, mo, init, _ := solverBenchFixture(b)
	idx := placement.NewTransIndex(counts, init.Layers, init.Experts)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = placement.Anneal(counts, init, placement.AnnealOptions{
					Seed: uint64(i), Memory: mo, Workers: workers, Index: idx,
				})
			}
		})
	}
}

// solverBenchJSON is the BENCH_solver.json shape.
type solverBenchJSON struct {
	Scale struct {
		Model            string  `json:"model"`
		Layers           int     `json:"layers"`
		Experts          int     `json:"experts"`
		GPUs             int     `json:"gpus"`
		ProfileTokens    int     `json:"profile_tokens"`
		Oversubscription float64 `json:"oversubscription"`
		Iterations       int     `json:"anneal_iterations"`
		NNZ              int     `json:"transition_nnz"`
		Density          float64 `json:"transition_density"`
		CPUs             int     `json:"cpus"`
	} `json:"scale"`

	// MemoryAwareAnneal / CrossingOnlyAnneal compare the dense reference
	// path against the sparse production path on identical instances and
	// seeds. BitIdentical asserts the two paths returned the same placement.
	MemoryAwareAnneal  solverCompareJSON `json:"memory_aware_anneal"`
	CrossingOnlyAnneal solverCompareJSON `json:"crossing_only_anneal"`

	// CheAnneal measures the Che-residency anneal on the same instance:
	// wall-clock versus the static sparse anneal (VsStaticSlowdown — what the
	// warm-started Newton occupancy solves cost per swap) and whether the
	// result, re-priced from scratch, still beats the start (the incremental
	// pricer did not drift; the placement package pins exact agreement).
	CheAnneal struct {
		SparseMS         float64 `json:"sparse_ms"`
		VsStaticSlowdown float64 `json:"vs_static_slowdown"`
		NonWorsening     bool    `json:"objective_non_worsening"`
	} `json:"che_anneal"`

	// Portfolio is the Workers scaling curve (sparse path, memory-aware).
	// PerReplicaMS = WallMS/Workers: flat means near-linear scaling in
	// total replicas solved per second; on fewer cores than Workers the
	// wall-clock grows toward Workers x the serial time instead.
	Portfolio []portfolioPointJSON `json:"portfolio"`
}

type solverCompareJSON struct {
	DenseMS      float64 `json:"dense_ms"`
	SparseMS     float64 `json:"sparse_ms"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

type portfolioPointJSON struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	PerReplicaMS float64 `json:"per_replica_ms"`
	Objective    float64 `json:"objective"`
}

// TestGenerateSolverBench measures the solver benchmarks with its own timer
// and writes BENCH_solver.json. Gated on SOLVER_BENCH=1 so the regular test
// suite stays fast; CI runs it in the bench job and uploads the artifact.
func TestGenerateSolverBench(t *testing.T) {
	if os.Getenv("SOLVER_BENCH") == "" {
		t.Skip("set SOLVER_BENCH=1 to run the solver benchmark generator")
	}
	counts, mo, init, cfg := solverBenchFixture(t)
	idx := placement.NewTransIndex(counts, init.Layers, init.Experts)

	var out solverBenchJSON
	out.Scale.Model = cfg.Name
	out.Scale.Layers = cfg.Layers
	out.Scale.Experts = cfg.Experts
	out.Scale.GPUs = 8
	out.Scale.ProfileTokens = 3000
	out.Scale.Oversubscription = 2
	out.Scale.Iterations = 20000
	out.Scale.NNZ = idx.NNZ()
	out.Scale.Density = float64(idx.NNZ()) / float64((cfg.Layers-1)*cfg.Experts*cfg.Experts)
	out.Scale.CPUs = runtime.NumCPU()

	// timeBest returns the best-of-3 wall-clock of f (after one warmup) and
	// f's last result — best-of-n damps scheduler noise without needing the
	// full benchmark harness.
	timeBest := func(f func() *placement.Placement) (float64, *placement.Placement) {
		var pl *placement.Placement
		f() // warmup
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			pl = f()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()) / 1e6, pl
	}

	compare := func(mem *placement.MemoryObjective) solverCompareJSON {
		var c solverCompareJSON
		var dense, sparse *placement.Placement
		c.DenseMS, dense = timeBest(func() *placement.Placement {
			return placement.Anneal(counts, init, placement.AnnealOptions{Seed: 42, Memory: mem, Dense: true})
		})
		c.SparseMS, sparse = timeBest(func() *placement.Placement {
			return placement.Anneal(counts, init, placement.AnnealOptions{Seed: 42, Memory: mem, Index: idx})
		})
		c.Speedup = c.DenseMS / c.SparseMS
		c.BitIdentical = dense.Equal(sparse)
		return c
	}
	out.MemoryAwareAnneal = compare(mo)
	out.CrossingOnlyAnneal = compare(nil)

	che := *mo
	che.Model = placement.ResidencyChe
	cheMS, chePl := timeBest(func() *placement.Placement {
		return placement.Anneal(counts, init, placement.AnnealOptions{Seed: 42, Memory: &che, Index: idx})
	})
	out.CheAnneal.SparseMS = cheMS
	out.CheAnneal.VsStaticSlowdown = cheMS / out.MemoryAwareAnneal.SparseMS
	out.CheAnneal.NonWorsening = chePl.Validate() == nil &&
		che.Objective(chePl, counts) <= che.Objective(init, counts)+1e-9

	for _, workers := range []int{1, 2, 4, 8} {
		ms, pl := timeBest(func() *placement.Placement {
			return placement.Anneal(counts, init, placement.AnnealOptions{
				Seed: 42, Memory: mo, Workers: workers, Index: idx,
			})
		})
		out.Portfolio = append(out.Portfolio, portfolioPointJSON{
			Workers:      workers,
			WallMS:       ms,
			PerReplicaMS: ms / float64(workers),
			Objective:    mo.Objective(pl, counts),
		})
	}

	// The acceptance gates: the sparse path must be a pure speedup.
	if !out.MemoryAwareAnneal.BitIdentical || !out.CrossingOnlyAnneal.BitIdentical {
		t.Fatal("sparse anneal not bit-identical to dense reference")
	}
	if out.MemoryAwareAnneal.Speedup < 3 {
		t.Fatalf("memory-aware sparse speedup %.2fx below the 3x acceptance floor", out.MemoryAwareAnneal.Speedup)
	}
	if !out.CheAnneal.NonWorsening {
		t.Fatal("che anneal worsened its own objective (incremental pricer drift?)")
	}
	for i := 1; i < len(out.Portfolio); i++ {
		if out.Portfolio[i].Objective > out.Portfolio[0].Objective+1e-9 {
			t.Fatalf("portfolio Workers=%d objective %v worse than Workers=1 %v",
				out.Portfolio[i].Workers, out.Portfolio[i].Objective, out.Portfolio[0].Objective)
		}
	}

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteFileAtomic("BENCH_solver.json", append(blob, '\n')); err != nil {
		t.Fatal(err)
	}
	t.Logf("memory-aware anneal: dense %.1fms sparse %.1fms -> %.2fx (bit-identical %v)",
		out.MemoryAwareAnneal.DenseMS, out.MemoryAwareAnneal.SparseMS,
		out.MemoryAwareAnneal.Speedup, out.MemoryAwareAnneal.BitIdentical)
	t.Logf("che anneal: %.1fms (%.2fx the static sparse anneal)",
		out.CheAnneal.SparseMS, out.CheAnneal.VsStaticSlowdown)
	t.Log("wrote BENCH_solver.json")
}

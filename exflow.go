// Package exflow is the public API of this repository: a from-scratch Go
// implementation of ExFlow ("Exploiting Inter-Layer Expert Affinity for
// Accelerating Mixture-of-Experts Model Inference", IPDPS 2024) together
// with every substrate it needs — a simulated multi-GPU cluster with
// hierarchical topology, MPI-style collectives, a GPT MoE model with real
// forward math, routing-trace capture, affinity estimation, exact and
// heuristic placement solvers, and a distributed inference engine.
//
// The typical pipeline mirrors the paper:
//
//	sys := exflow.NewSystem(exflow.SystemOptions{
//		Model: moe.GPTM(32), GPUs: 16, AffinityStrength: 0.85, Seed: 1,
//	})
//	tr := sys.Profile(3000)                  // trace routing on sample tokens
//	pl := sys.SolvePlacement(tr)             // staged affinity placement
//	rep := sys.Run(engine.ExFlow, pl, exflow.Workload{})
//	fmt.Println(rep)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure, each regenerable via
// `go test -bench <Figure>` or `cmd/exflow-bench`.
package exflow

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/expertmem"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/topo"
	"repro/internal/trace"
)

// SystemOptions configures NewSystem.
type SystemOptions struct {
	// Model is the GPT MoE variant (see moe.GPTM, moe.GPTXL, ...).
	Model moe.Config
	// GPUs is the expert-parallel group size; the topology is derived via
	// topo.ForGPUs (4-GPU NVLink nodes, IB between nodes).
	GPUs int
	// AffinityStrength in [0,1] sets how concentrated the synthetic routing
	// kernel's inter-layer transitions are; pre-trained GPT MoE models
	// measured in the paper correspond to roughly 0.75-0.9. Zero selects
	// the default 0.85.
	AffinityStrength float64
	// DomainTilt scales how domain-specialized the routing kernel is (see
	// synth.KernelParams.DomainTilt). Zero selects the paper-faithful mild
	// default of 1; the online-serving drift experiments use larger values
	// to model checkpoints whose routing is sensitive to the traffic mix.
	DomainTilt float64
	// Dataset is the token-domain profile used for profiling and workload
	// generation; nil means synth.Pile().
	Dataset *synth.DatasetProfile
	// TopK is the gating fan-out (0 means the model config's value).
	TopK int
	// SolveWorkers is the placement solver's parallel portfolio width: the
	// staged pipeline's annealing runs that many independently seeded
	// replicas per stage (and solves stage-2 node subproblems concurrently)
	// and keeps the best result by objective, ties broken in seed order.
	// Any fixed value is deterministic; 0 or 1 is the serial solve,
	// bit-identical to previous releases.
	SolveWorkers int
	// ResidencyModel selects how memory-aware placement solves model expert
	// residency: "static" (or empty — the top-Slots warm set, bit-identical
	// to previous releases) or "che" (Che-approximation fractional occupancy
	// with prefetch-coverage discount; prices LRU/LFU churn the static warm
	// set cannot). Read by SolvePlacementMemoryAware; invalid names panic
	// there.
	ResidencyModel string
	// Seed makes the whole system deterministic.
	Seed uint64
}

// System bundles a model, its routing behaviour, and a topology — everything
// needed to profile, place and run.
type System struct {
	Model   *moe.Model
	Router  moe.Router
	Kernel  *synth.Kernel
	Topo    *topo.Topology
	Dataset *synth.DatasetProfile
	// SolveWorkers is the placement-solver portfolio width (see
	// SystemOptions.SolveWorkers); 0 or 1 solves serially.
	SolveWorkers int
	// ResidencyModel is the memory-aware solve's residency model (see
	// SystemOptions.ResidencyModel); empty means static.
	ResidencyModel string
	Seed           uint64
}

// NewSystem materializes a deterministic system.
func NewSystem(opts SystemOptions) *System {
	cfg := opts.Model
	if opts.TopK > 0 {
		cfg.TopK = opts.TopK
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	strength := opts.AffinityStrength
	if strength == 0 {
		strength = 0.85
	}
	ds := opts.Dataset
	if ds == nil {
		ds = synth.Pile()
	}
	kernel := synth.NewKernel(synth.KernelParams{
		Seed:       rng.Mix64(opts.Seed, 0x5F5),
		Layers:     cfg.Layers,
		Experts:    cfg.Experts,
		Strength:   strength,
		DomainTilt: opts.DomainTilt,
	})
	return &System{
		Model:          moe.NewModel(cfg, rng.Mix64(opts.Seed, 0x30D)),
		Router:         synth.NewKernelRouter(kernel, ds, cfg.TopK),
		Kernel:         kernel,
		Topo:           topo.ForGPUs(opts.GPUs),
		Dataset:        ds,
		SolveWorkers:   opts.SolveWorkers,
		ResidencyModel: opts.ResidencyModel,
		Seed:           opts.Seed,
	}
}

// Profile traces `tokens` sample tokens from the system's dataset through
// the router, recording the expert chosen at every layer — the offline
// profiling step of Section V-A.
func (s *System) Profile(tokens int) *trace.Trace {
	ids := trace.SequentialIDs(tokens, s.Dataset.TokenID)
	return trace.Collect(s.Router, s.Model.Cfg.Layers, ids)
}

// ProfileOn traces tokens drawn from an arbitrary dataset profile (used by
// the out-of-distribution consistency experiments).
func (s *System) ProfileOn(ds *synth.DatasetProfile, tokens, offset int) *trace.Trace {
	router := synth.NewKernelRouter(s.Kernel, ds, s.Model.Cfg.TopK)
	ids := make([]uint64, tokens)
	for i := range ids {
		ids[i] = ds.TokenID(uint64(offset + i))
	}
	return trace.Collect(router, s.Model.Cfg.Layers, ids)
}

// SolvePlacement runs the production two-stage (node, then GPU) affinity
// placement pipeline on a profiling trace.
func (s *System) SolvePlacement(tr *trace.Trace) *placement.Placement {
	return placement.StagedOpt(tr.AllTransitionCounts(), s.Model.Cfg.Layers, s.Model.Cfg.Experts, s.Topo, s.Seed,
		placement.StagedOptions{Workers: s.SolveWorkers})
}

// SolvePlacementMemoryAware runs the staged pipeline with the expected
// expert-stall cost folded into the solver objective for a tiered-memory
// deployment (placement.MemoryObjective): the profiling trace supplies both
// the crossing structure and the demand-mass oracle, so the solver stops
// concentrating the hot set past what each GPU's HBM slot budget can hold.
// The arguments mirror Workload/ServeOptions: oversub >= 1 (values below 1
// panic; exactly 1, or 0, leaves the term inactive and the result
// bit-identical to SolvePlacement), policy names an expertmem cache policy
// ("" = affinity), prefetchK 0 means the default 4, and hostSlots bounds
// the DRAM master-copy set (NVMe-resident experts cost more to miss, which
// the objective prices). The residency model comes from the System
// (SystemOptions.ResidencyModel): static prices the top-Slots warm set,
// che prices fractional occupancy under churn with the prefetcher's
// coverage discounted.
func (s *System) SolvePlacementMemoryAware(tr *trace.Trace, oversub float64, policy string, prefetchK, hostSlots int) *placement.Placement {
	return s.SolvePlacementReplicated(tr, oversub, policy, prefetchK, hostSlots, 0)
}

// SolvePlacementReplicated runs the staged pipeline with a replication
// budget: after the two-stage single-copy solve finishes, up to budget extra
// expert copies are annealed in (placement.AnnealReplicas) wherever the
// replicated-crossing relief outweighs the memory objective's price for
// holding another copy. oversub, policy, prefetchK, and hostSlots mirror
// SolvePlacementMemoryAware and build that pricing objective; oversub 0
// solves crossing-only and leaves copies free in memory terms (the
// crossing relief alone decides). Budget 0 is bit-identical to the
// corresponding single-copy solve — SolvePlacement when oversub is 0,
// SolvePlacementMemoryAware otherwise.
func (s *System) SolvePlacementReplicated(tr *trace.Trace, oversub float64, policy string, prefetchK, hostSlots, budget int) *placement.Placement {
	cfg := s.Model.Cfg
	counts := tr.AllTransitionCounts()
	var mo *placement.MemoryObjective
	if oversub != 0 {
		if oversub < 1 {
			panic(fmt.Sprintf("exflow: oversubscription must be 0 (off) or >= 1, got %v", oversub))
		}
		pol, err := expertmem.ParsePolicy(policy)
		if err != nil {
			panic(err)
		}
		model, err := placement.ParseResidencyModel(s.ResidencyModel)
		if err != nil {
			panic(err)
		}
		if prefetchK == 0 {
			prefetchK = 4
		}
		mcfg := expertmem.ConfigFor(s.Topo, cfg.Layers, cfg.Experts, int(cfg.ExpertParams())*2, // fp16
			oversub, pol, prefetchK, hostSlots, counts)
		mo = placement.NewMemoryObjective(mcfg, 0)
		mo.Model = model
	}
	return placement.StagedOpt(counts, cfg.Layers, cfg.Experts, s.Topo, s.Seed,
		placement.StagedOptions{Memory: mo, Workers: s.SolveWorkers, ReplicaBudget: budget})
}

// Baseline returns the Deepspeed-MoE contiguous placement.
func (s *System) Baseline() *placement.Placement {
	return placement.Contiguous(s.Model.Cfg.Layers, s.Model.Cfg.Experts, s.Topo.TotalGPUs())
}

// Workload describes an inference workload for Run.
type Workload struct {
	// RequestsPerGPU is the per-GPU batch (0 means 8).
	RequestsPerGPU int
	// PromptLen is the prefilled context length (0 means 16).
	PromptLen int
	// GenerateTokens is the decode iteration count (0 means 4).
	GenerateTokens int
	// EvalOffset shifts the token-id stream so evaluation tokens are
	// disjoint from the profiling tokens (0 means 1<<20).
	EvalOffset int
	// CapacityFactor, when positive, enables GShard-style expert capacity
	// with token dropping (see engine.Config.CapacityFactor).
	CapacityFactor float64
	// Hierarchical routes dispatch Alltoalls through node leaders.
	Hierarchical bool
	// Oversubscription, when >= 1, runs the engine under tiered
	// expert-weight memory (internal/expertmem): each GPU's HBM holds
	// assigned-experts/ratio weight slots and misses stall the rank for the
	// host-link fetch. The routing kernel's ground-truth transition rows
	// serve as the affinity oracle. Zero disables the memory layer.
	Oversubscription float64
	// CachePolicy is the residency policy under oversubscription: "lru",
	// "lfu", "pin", or "affinity" (default). Invalid names panic.
	CachePolicy string
	// PrefetchK is the prefetch fan-out (0 means 4; affinity policy only).
	PrefetchK int
}

func (w Workload) withDefaults() Workload {
	if w.RequestsPerGPU == 0 {
		w.RequestsPerGPU = 8
	}
	if w.PromptLen == 0 {
		w.PromptLen = 16
	}
	if w.GenerateTokens == 0 {
		w.GenerateTokens = 4
	}
	if w.EvalOffset == 0 {
		w.EvalOffset = 1 << 20
	}
	return w
}

// memoryConfigFor derives the engine path's tiered expert-memory config
// from a workload, or nil when the memory layer is off. The kernel's
// ground-truth transition rows stand in for a profiled affinity estimate —
// the engine path has no trace in hand. The stall-model conformance suite
// reuses it so its serve-layer replay sees the identical oracle.
func (s *System) memoryConfigFor(w Workload) *expertmem.Config {
	if w.Oversubscription == 0 {
		return nil
	}
	if w.Oversubscription < 1 {
		panic(fmt.Sprintf("exflow: Workload.Oversubscription must be 0 (off) or >= 1, got %v", w.Oversubscription))
	}
	pol, err := expertmem.ParsePolicy(w.CachePolicy)
	if err != nil {
		panic(err)
	}
	k := w.PrefetchK
	if k == 0 {
		k = 4
	}
	cfg := s.Model.Cfg
	aff := make([][][]float64, cfg.Layers-1)
	for l := range aff {
		aff[l] = make([][]float64, cfg.Experts)
		for from := range aff[l] {
			aff[l][from] = s.Kernel.Transition(l, from)
		}
	}
	mc := expertmem.ConfigFor(s.Topo, cfg.Layers, cfg.Experts, int(cfg.ExpertParams())*2, // fp16
		w.Oversubscription, pol, k, 0, aff)
	return &mc
}

// Run executes distributed inference in the given mode under the given
// placement and returns the measurement report.
func (s *System) Run(mode engine.Mode, pl *placement.Placement, w Workload) *engine.Report {
	w = w.withDefaults()
	ds := s.Dataset
	memCfg := s.memoryConfigFor(w)
	return engine.Run(engine.Config{
		Model:           s.Model,
		Router:          s.Router,
		Topo:            s.Topo,
		Placement:       pl,
		Mode:            mode,
		Cost:            moe.DefaultCostModel(),
		RequestsPerGPU:  w.RequestsPerGPU,
		PromptLen:       w.PromptLen,
		GenerateTokens:  w.GenerateTokens,
		CapacityFactor:  w.CapacityFactor,
		HierarchicalA2A: w.Hierarchical,
		TokenID: func(req, iter int) uint64 {
			return ds.TokenID(uint64(w.EvalOffset + req*4096 + iter))
		},
		Seed:   s.Seed,
		Memory: memCfg,
	})
}

// Speedup is a convenience running baseline and ExFlow back to back and
// returning (baseline report, exflow report, throughput ratio).
func (s *System) Speedup(profileTokens int, w Workload) (*engine.Report, *engine.Report, float64) {
	base := s.Run(engine.Vanilla, s.Baseline(), w)
	pl := s.SolvePlacement(s.Profile(profileTokens))
	exf := s.Run(engine.ExFlow, pl, w)
	if base.Throughput == 0 {
		return base, exf, 0
	}
	return base, exf, exf.Throughput / base.Throughput
}

// describe returns a one-line system summary used by the CLI tools.
func (s *System) describe() string {
	return fmt.Sprintf("%s on %s", s.Model.Cfg.String(), s.Topo.String())
}

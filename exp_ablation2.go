package exflow

import (
	"repro/internal/engine"
	"repro/internal/moe"
)

func init() {
	register("ablation_top2", runAblationTop2)
	register("ablation_capacity", runAblationCapacity)
	register("ablation_hierarchical", runAblationHierarchical)
}

// runAblationTop2 measures the comm-volume picture under top-2 gating
// (Table I's second column): both modes now need two Alltoalls per layer,
// so the coherent design's advantage shrinks to the volume term.
func runAblationTop2(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_top2", Title: "Ablation: top-1 vs top-2 gating (comm volume and throughput)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	tb := newTableHelper(res, "coherent relative to vanilla (same gating)", "topk")
	sBytes := tb.NewSeries("alltoall-bytes-ratio")
	sTput := tb.NewSeries("throughput-ratio")
	for _, topK := range []int{1, 2} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: 16, TopK: topK, Seed: opts.Seed})
		van := sys.Run(engine.Vanilla, sys.Baseline(), w)
		coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
		sBytes.Add(float64(topK), float64(coh.AlltoallBytes)/float64(van.AlltoallBytes))
		sTput.Add(float64(topK), coh.Throughput/van.Throughput)
		res.AddNote("top-%d: coherent moves %.0f%% of vanilla's alltoall bytes, throughput ratio %.2fx",
			topK, 100*float64(coh.AlltoallBytes)/float64(van.AlltoallBytes), coh.Throughput/van.Throughput)
	}
	res.AddNote("Table I: vanilla needs 4*G*N*L*p under top-2 vs coherent 2*L*p*+G — the volume saving persists, the Alltoall-count saving does not")
	return res
}

// runAblationCapacity sweeps the GShard capacity factor and reports dropped
// dispatches and throughput — the cost model of "variable token capacity".
func runAblationCapacity(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_capacity", Title: "Ablation: expert capacity factor (dropped tokens vs throughput)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed})
	pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
	tb := newTableHelper(res, "capacity factor sweep (ExFlow mode, 8 GPUs)", "capacity-factor")
	sDrop := tb.NewSeries("dropped-frac")
	sTput := tb.NewSeries("throughput")
	for _, cf := range []float64{0.5, 1.0, 1.5, 2.0, 4.0} {
		w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2), CapacityFactor: cf}
		rep := sys.Run(engine.ExFlow, pl, w)
		total := rep.DispatchSameGPU + rep.DispatchSameNode + rep.DispatchCrossNode
		frac := float64(rep.DroppedJobs) / float64(total)
		sDrop.Add(cf, frac)
		sTput.Add(cf, rep.Throughput)
		res.AddNote("cf=%.1f: %.1f%% of dispatches dropped, throughput %.0f tok/s", cf, frac*100, rep.Throughput)
	}
	res.AddNote("drops fall monotonically with the factor; affinity placement skews expert load, so tight capacity drops more than under uniform routing")
	return res
}

// runAblationHierarchical compares flat pairwise Alltoall with the
// node-leader hierarchical schedule at several cluster sizes — the
// "leveraging the hierarchical bandwidth" angle of Section I-C applied to
// the collective itself.
func runAblationHierarchical(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_hierarchical", Title: "Ablation: flat vs hierarchical (node-leader) Alltoall dispatch"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	tb := newTableHelper(res, "throughput of hierarchical relative to flat (ExFlow mode)", "nodes")
	s := tb.NewSeries("hier/flat")
	for _, nodes := range []int{2, 4, 8} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: nodes * 4, Seed: opts.Seed})
		pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
		w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
		flat := sys.Run(engine.ExFlow, pl, w)
		wh := w
		wh.Hierarchical = true
		hier := sys.Run(engine.ExFlow, pl, wh)
		ratio := hier.Throughput / flat.Throughput
		s.Add(float64(nodes), ratio)
		res.AddNote("%d nodes: hierarchical/flat throughput = %.2fx", nodes, ratio)
		// Semantics must be identical.
		for r := range flat.Outputs {
			for i := range flat.Outputs[r] {
				if flat.Outputs[r][i] != hier.Outputs[r][i] {
					res.AddNote("WARNING: hierarchical schedule changed outputs — bug")
				}
			}
		}
	}
	res.AddNote("the win grows with node count: per layer the flat schedule pays the IB latency once per remote GPU, the hierarchical one once per remote node")
	return res
}

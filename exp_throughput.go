package exflow

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
)

func init() {
	register("fig10", runFig10)
	register("fig13", runFig13)
}

// fig10Group is one subplot of Fig 10: a model variant swept over
// expert-parallel sizes.
type fig10Group struct {
	model moe.Config
	gpus  []int
}

// runFig10 reproduces Fig 10: end-to-end inference throughput of seven
// pre-trained GPT MoE variants under Deepspeed-style vanilla parallelism,
// ExFlow without affinity (context coherence only) and full ExFlow,
// normalized to the vanilla baseline per configuration.
func runFig10(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig10", Title: "End-to-end inference throughput (normalized to Deepspeed baseline)"}
	shrink := func(c moe.Config) moe.Config {
		c.Layers = opts.scaled(c.Layers, 6)
		return c
	}
	groups := []fig10Group{
		{shrink(moe.GPTM(8)), []int{4, 8}},
		{shrink(moe.GPTM(16)), []int{4, 8, 16}},
		{shrink(moe.GPTM(32)), []int{8, 16, 32}},
		{shrink(moe.GPTM(64)), []int{8, 16, 32, 64}},
		{shrink(moe.GPTM32L()), []int{8, 16, 32}},
		{shrink(moe.GPTM40L()), []int{8, 16, 32}},
		{shrink(moe.GPTXL()), []int{8, 16}},
	}
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	tb := newTableHelper(res, "normalized throughput (vanilla = 1.0); x = configuration index", "config#")
	sBase := tb.NewSeries("deepspeed")
	sCoh := tb.NewSeries("exflow-no-affinity")
	sExf := tb.NewSeries("exflow-affinity")
	idx := 0
	bestSpeedup, bestLabel := 0.0, ""
	for _, grp := range groups {
		for _, gpus := range grp.gpus {
			sys := NewSystem(SystemOptions{Model: grp.model, GPUs: gpus, Seed: opts.Seed})
			base := sys.Run(engine.Vanilla, sys.Baseline(), w)
			coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
			pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
			exf := sys.Run(engine.ExFlow, pl, w)
			x := float64(idx)
			sBase.Add(x, 1.0)
			sCoh.Add(x, coh.Throughput/base.Throughput)
			sExf.Add(x, exf.Throughput/base.Throughput)
			label := fmt.Sprintf("%s on %d GPUs", grp.model.Name, gpus)
			res.AddNote("config %d = %s: coherent %.2fx, exflow %.2fx over deepspeed",
				idx, label, coh.Throughput/base.Throughput, exf.Throughput/base.Throughput)
			if s := exf.Throughput / base.Throughput; s > bestSpeedup {
				bestSpeedup, bestLabel = s, label
			}
			idx++
		}
	}
	res.AddNote("best speedup: %.2fx (%s); paper reports up to 2.2x (MoE-16), 1.6x (MoE-32), 1.8x (MoE-64)", bestSpeedup, bestLabel)
	res.AddNote("paper shape: gains grow with experts-per-GPU; smallest when each GPU holds 1 expert or everything fits one node")
	return res
}

// runFig13 reproduces Fig 13: how many profiling tokens are needed to
// capture the affinity. Placements are solved from growing prefixes of a
// profiling trace and evaluated as the relative reduction of cross-GPU
// Alltoall traffic on a held-out evaluation trace (more experts need more
// tokens to converge).
func runFig13(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig13", Title: "Profiling-token budget vs relative Alltoall speedup"}
	budgets := []int{50, 1000, 2000, 3000, 4000, 5000}
	tb := newTableHelper(res, "relative Alltoall traffic reduction vs contiguous (1.0 = none)", "profile-tokens")
	for _, experts := range []int{8, 16, 32, 64} {
		cfg := moe.GPTM(experts)
		cfg.Layers = opts.scaled(24, 6)
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed})
		full := sys.Profile(opts.scaled(5000, 600))
		eval := sys.ProfileOn(sys.Dataset, opts.scaled(6000, 800), 1<<22)
		counts := eval.AllTransitionCounts()
		baseCross := sys.Baseline().Crossings(counts)
		s := tb.NewSeries(fmt.Sprintf("%d-experts", experts))
		for _, budget := range budgets {
			n := opts.scaled(budget, budget/10+5)
			pl := placement.Staged(full.Head(n).AllTransitionCounts(), cfg.Layers, cfg.Experts, sys.Topo, opts.Seed)
			cross := pl.Crossings(counts)
			speedup := 1.0
			if cross > 0 {
				speedup = baseCross / cross
			}
			s.Add(float64(budget), speedup)
		}
	}
	res.AddNote("speedup = contiguous cross-GPU transitions / affinity-placement cross-GPU transitions on held-out tokens")
	res.AddNote("paper: ~1000 tokens suffice for MoE-8, ~3000 for MoE-64; curves saturate beyond that")
	return res
}

package exflow

import (
	"strings"
	"testing"

	"repro/internal/moe"
)

// TestServeOptionValidation: malformed serving options must fail fast with
// a field-naming error — before the expensive engine calibration — instead
// of panicking (negative window) or hanging (negative arrival rate spins
// the arrival generator forever).
func TestServeOptionValidation(t *testing.T) {
	cfg := moe.GPTM(8)
	cfg.Layers = 4
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 4, Seed: 1})

	cases := []struct {
		name string
		opts ServeOptions
		want string
	}{
		{"negative replicas", ServeOptions{Replicas: -2}, "Replicas"},
		{"negative window", ServeOptions{Window: -1}, "TraceWindow"},
		{"negative max batch", ServeOptions{MaxBatch: -8}, "MaxBatch"},
		{"negative decode", ServeOptions{DecodeTokens: -1}, "DecodeTokens"},
		{"negative profile", ServeOptions{ProfileTokens: -10}, "ProfileTokens"},
		{"negative load", ServeOptions{LoadFrac: -0.5}, "LoadFrac"},
		{"negative rate", ServeOptions{Phases: []ServePhase{{Duration: 1, Rate: -3}}}, "rate"},
		{"zero duration", ServeOptions{Phases: []ServePhase{{Duration: 0, Rate: 1}}}, "Duration"},
		{"negative duration", ServeOptions{Phases: []ServePhase{{Duration: -2, Rate: 1}}}, "Duration"},
		{"bad arrival", ServeOptions{Phases: []ServePhase{{Duration: 1, Rate: 1, Arrival: "fractal"}}}, "arrival"},
		{"negative patience", ServeOptions{Patience: -1}, "non-negative"},
		{"fractional oversub", ServeOptions{Oversubscription: 0.5}, "Oversubscription"},
		{"negative oversub", ServeOptions{Oversubscription: -2}, "Oversubscription"},
		{"negative host slots", ServeOptions{HostSlots: -1}, "HostSlots"},
		{"bad cache policy", ServeOptions{Oversubscription: 2, CachePolicy: "lru2"}, "cache policy"},
		// A cache policy (or memory-aware re-placement) without the memory
		// layer is rejected, not silently ignored: the policy would be a
		// no-op, which almost always means Oversubscription was forgotten.
		{"policy without memory layer", ServeOptions{CachePolicy: "affinity"}, "Oversubscription"},
		{"memory-aware without memory layer", ServeOptions{MemoryAware: true}, "Oversubscription"},
		// A residency model only steers the memory-aware objective; naming
		// one without MemoryAware (or naming an unknown model) is rejected.
		{"residency without memory-aware", ServeOptions{Oversubscription: 2, ResidencyModel: "che"}, "MemoryAware"},
		{"bad residency model", ServeOptions{Oversubscription: 2, MemoryAware: true, ResidencyModel: "clock"}, "residency"},
		// HostSlots without the memory layer bounds a tier that doesn't
		// exist; rejected so the caller notices the missing Oversubscription
		// (pinned here because an earlier revision silently accepted it).
		{"host slots without memory layer", ServeOptions{HostSlots: 32}, "Oversubscription"},
		// The stall trigger watches tiered-memory stalls through the adaptive
		// controller: both prerequisites are named when missing.
		{"stall trigger without memory layer", ServeOptions{StallTrigger: true, Adaptive: true}, "Oversubscription"},
		{"stall trigger without adaptive", ServeOptions{StallTrigger: true, Oversubscription: 2}, "Adaptive"},
		{"stall factor without trigger", ServeOptions{StallTriggerFactor: 2}, "StallTrigger"},
		{"negative stall factor", ServeOptions{StallTriggerFactor: -1}, "StallTriggerFactor"},
		// Fleet specs are validated at the public boundary too.
		{"fleet min over max", ServeOptions{Fleet: &FleetSpec{MinReplicas: 5, MaxReplicas: 2}}, "MaxReplicas"},
		{"fleet replicas outside bounds", ServeOptions{Replicas: 1, Fleet: &FleetSpec{MinReplicas: 2, MaxReplicas: 4}}, "bounds"},
		{"fleet bad admission", ServeOptions{Fleet: &FleetSpec{Admission: "vibes"}}, "admission"},
		{"fleet paging without SLO", ServeOptions{Oversubscription: 2, Fleet: &FleetSpec{Admission: FleetAdmissionPaging}}, "SLOSeconds"},
		{"fleet paging without memory layer", ServeOptions{Fleet: &FleetSpec{Admission: FleetAdmissionPaging, SLOSeconds: 1}}, "Oversubscription"},
		{"fleet shared cache without memory layer", ServeOptions{Fleet: &FleetSpec{SharedHostCache: true}}, "Oversubscription"},
		{"fleet shared cache without host slots", ServeOptions{Oversubscription: 2, Fleet: &FleetSpec{SharedHostCache: true}}, "HostSlots"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Serve(sys, c.opts); err == nil {
				t.Fatalf("Serve accepted %+v", c.opts)
			} else if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name %q", err, c.want)
			}
			if _, err := CalibrateServe(sys, c.opts); err == nil {
				t.Fatalf("CalibrateServe accepted %+v", c.opts)
			}
		})
	}

	// Zero values everywhere remain legal: they mean "use the defaults".
	if err := (ServeOptions{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
}

package exflow

import (
	"repro/internal/moe"
	"repro/internal/stats"
	"repro/internal/synth"
)

func init() {
	register("serving_adaptive", runServingAdaptive)
}

// ViralDataset is the drifted traffic profile the serving experiments use: a
// burst of near-single-domain traffic (a viral topic), the worst realistic
// case for a placement profiled on a broad mixture.
func ViralDataset() *synth.DatasetProfile {
	return synth.Custom("viral", []float64{0, 0, 0, 0, 1, 0}, 0xD81F)
}

// servingDomainTilt models a domain-specialized checkpoint (see
// SystemOptions.DomainTilt): at the paper-faithful mild tilt a mixture shift
// barely moves the routing distribution (Table III), so the serving drift
// experiments use a checkpoint whose routing genuinely follows the traffic.
const servingDomainTilt = 8

// runServingAdaptive is the online-serving headline: a two-phase traffic
// program (broad pile mixture, then a viral single-domain burst) served near
// the capacity knee by a static-placement fleet and by an adaptive fleet
// with routing-drift detection and live expert re-placement. Static ExFlow's
// P95 degrades when the mixture drifts; the adaptive fleet pays a visible
// migration pause, then recovers.
func runServingAdaptive(opts ExperimentOptions) *Result {
	res := &Result{ID: "serving_adaptive", Title: "Online serving: static ExFlow vs adaptive re-placement under dataset drift"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(16, 8)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 16, Seed: opts.Seed + 6, DomainTilt: servingDomainTilt})

	warmDur := float64(opts.scaled(20, 3))
	driftDur := float64(opts.scaled(40, 6))
	base := ServeOptions{
		Replicas:     2,
		DecodeTokens: 32,
		// Drift detection compares the live window against the profiled
		// baseline; a baseline much smaller than the window is itself
		// noise, so the profile does not scale below 2500 tokens.
		ProfileTokens: opts.scaled(3000, 2500),
		LoadFrac:      0.97,
		Phases: []ServePhase{
			{Name: "warm", Duration: warmDur},
			{Name: "drift", Duration: driftDur, Dataset: ViralDataset()},
		},
		LatencyBucket: (warmDur + driftDur) / 60,
	}
	// One calibration (profile + engine fit) serves both fleets.
	cal, err := CalibrateServe(sys, base)
	if err != nil {
		res.AddNote("serve calibration failed: %v", err)
		return res
	}
	base.Calibration = cal
	mk := func(adaptive bool) ServeOptions {
		o := base
		o.Adaptive = adaptive
		return o
	}
	static, sm, err := Serve(sys, mk(false))
	if err != nil {
		res.AddNote("static serve failed: %v", err)
		return res
	}
	adaptive, _, err := Serve(sys, mk(true))
	if err != nil {
		res.AddNote("adaptive serve failed: %v", err)
		return res
	}

	// Table 1: P95 by era — warm, whole drift phase, and the drift tail
	// (second half of the drift phase, after the adaptive fleet has settled).
	tail0, tail1 := warmDur+driftDur/2, warmDur+driftDur
	tb := newTableHelper(res, "P95 request latency (s) by era (0=warm 1=drift 2=drift-tail)", "era")
	sSt := tb.NewSeries("static-p95")
	sAd := tb.NewSeries("adaptive-p95")
	stTail, adTail := static.WindowStats(tail0, tail1), adaptive.WindowStats(tail0, tail1)
	for i, pair := range [][2]float64{
		{static.Phases[0].P95, adaptive.Phases[0].P95},
		{static.Phases[1].P95, adaptive.Phases[1].P95},
		{stTail.P95, adTail.P95},
	} {
		sSt.Add(float64(i), pair[0])
		sAd.Add(float64(i), pair[1])
	}

	// Table 2: the P95 time series, where the drift hit and the migration
	// pause are visible.
	t2 := newTableHelper(res, "P95 latency (s) over time", "sim-seconds")
	copySeries(t2, static.LatencyP95, "static")
	copySeries(t2, adaptive.LatencyP95, "adaptive")

	// Table 3: drift score and live cross-node fraction.
	t3 := newTableHelper(res, "drift score (JS) and cross-node dispatch over time", "sim-seconds")
	copySeries(t3, adaptive.Drift, "drift-score")
	copySeries(t3, static.CrossFrac, "static-crossfrac")
	copySeries(t3, adaptive.CrossFrac, "adaptive-crossfrac")

	res.AddNote("fleet capacity %.0f tok/s/replica (fixed=%.0fus per-token=%.2fus cross-hop=%.2fus), offered load %.0f%% of knee",
		sm.TokenCapacity, sm.Cost.Fixed*1e6, sm.Cost.PerToken*1e6, sm.Cost.PerCrossHop*1e6, base.LoadFrac*100)
	for _, m := range adaptive.Migrations {
		res.AddNote("migration @%.2fs: drift score %.4f, %d expert moves (%d cross-node), %.0fms pause per replica, predicted per-token gain %.1f%%",
			m.Time, m.Score, m.Moves, m.CrossNodeMoves, m.Seconds*1e3, m.PredictedGain*100)
	}
	if len(adaptive.Migrations) == 0 {
		res.AddNote("adaptive fleet never migrated — drift signal below threshold at this scale")
	}
	warmP95 := static.Phases[0].P95
	if reg := stTail.P95 - warmP95; reg > 0.05*warmP95 {
		recovery := (stTail.P95 - adTail.P95) / reg
		res.AddNote("static P95 regression after drift: %.3fs -> %.3fs; adaptive tail %.3fs recovers %.0f%% of the regression",
			warmP95, stTail.P95, adTail.P95, recovery*100)
	} else {
		res.AddNote("static placement did not measurably regress at this scale (warm %.3fs, tail %.3fs; adaptive tail %.3fs)",
			warmP95, stTail.P95, adTail.P95)
	}
	return res
}

// copySeries clones a report series into a result table under a new name.
func copySeries(tb *stats.Table, s *stats.Series, name string) {
	out := tb.NewSeries(name)
	out.X = append(out.X, s.X...)
	out.Y = append(out.Y, s.Y...)
}

package exflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// ExperimentOptions tune the experiment runners.
type ExperimentOptions struct {
	// Scale in (0, 1] shrinks token counts, iteration counts and sweep
	// ranges proportionally for quick runs (unit tests use ~0.1; benches
	// and the CLI default to 1.0).
	Scale float64
	// Seed makes every experiment deterministic.
	Seed uint64
}

func (o ExperimentOptions) withDefaults() ExperimentOptions {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

// scaled returns max(min, round(n*Scale)).
func (o ExperimentOptions) scaled(n, min int) int {
	v := int(float64(n) * o.Scale)
	if v < min {
		v = min
	}
	return v
}

// Result is the structured output of one experiment: the series/tables a
// figure plots plus free-form notes recording what to compare against the
// paper.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Heat   []*stats.Heatmap
	Notes  []string
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render returns the full textual report of the experiment.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "######## %s — %s ########\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, h := range r.Heat {
		b.WriteString(h.Render())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the experiment's tables and heatmaps in CSV form.
func (r *Result) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	for _, h := range r.Heat {
		b.WriteString(h.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// experimentFunc runs one experiment.
type experimentFunc func(ExperimentOptions) *Result

// registry maps experiment ids to runners. Populated in experiment files.
var registry = map[string]experimentFunc{}

func register(id string, fn experimentFunc) { registry[id] = fn }

// Experiments returns the sorted list of registered experiment ids.
func Experiments() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunExperiment executes the experiment with the given id.
func RunExperiment(id string, opts ExperimentOptions) (*Result, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exflow: unknown experiment %q (known: %s)", id, strings.Join(Experiments(), ", "))
	}
	return fn(opts.withDefaults()), nil
}

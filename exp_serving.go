package exflow

import (
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
	"repro/internal/synth"
	"repro/internal/workload"
)

func init() {
	register("serving_latency", runServingLatency)
	register("ablation_migration", runAblationMigration)
}

// fitIterationModel measures the engine's per-iteration time at two batch
// sizes and fits the serving-side linear model.
func fitIterationModel(sys *System, mode engine.Mode, pl *placement.Placement, iters int) (workload.IterationModel, error) {
	measure := func(batch int) float64 {
		rep := sys.Run(mode, pl, Workload{RequestsPerGPU: batch, PromptLen: 8, GenerateTokens: iters})
		return (rep.SimSeconds - rep.Breakdown["prefill"]) / float64(iters)
	}
	n1 := 2 * sys.Topo.TotalGPUs()
	n2 := 8 * sys.Topo.TotalGPUs()
	return workload.FitIterationModel(n1, measure(2), n2, measure(8))
}

// runServingLatency goes one level above the paper: it translates ExFlow's
// iteration-time advantage into request-level tail latency under a Poisson
// arrival process with continuous batching — what a serving operator
// actually experiences.
func runServingLatency(opts ExperimentOptions) *Result {
	res := &Result{ID: "serving_latency", Title: "Serving-level consequence: P95 request latency vs offered load"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 16, Seed: opts.Seed})
	iters := opts.scaled(3, 2)
	basePl := sys.Baseline()
	affPl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))

	mBase, err := fitIterationModel(sys, engine.Vanilla, basePl, iters)
	if err != nil {
		res.AddNote("baseline fit failed: %v", err)
		return res
	}
	mExf, err := fitIterationModel(sys, engine.ExFlow, affPl, iters)
	if err != nil {
		res.AddNote("exflow fit failed: %v", err)
		return res
	}
	maxBatch := 8 * sys.Topo.TotalGPUs()
	capBase := workload.CapacityTokensPerSecond(mBase, maxBatch)
	capExf := workload.CapacityTokensPerSecond(mExf, maxBatch)
	res.AddNote("iteration models: baseline fixed=%.1fus per-token=%.2fus, exflow fixed=%.1fus per-token=%.2fus",
		mBase.Fixed*1e6, mBase.PerToken*1e6, mExf.Fixed*1e6, mExf.PerToken*1e6)
	res.AddNote("token capacity: baseline %.0f tok/s, exflow %.0f tok/s (%.2fx)", capBase, capExf, capExf/capBase)

	tb := newTableHelper(res, "P95 request latency (s) vs offered load (fraction of baseline capacity)", "load-frac")
	sBase := tb.NewSeries("deepspeed-p95")
	sExf := tb.NewSeries("exflow-p95")
	decode := 32
	requests := opts.scaled(3000, 400)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		rate := frac * capBase / float64(decode)
		spec := workload.Spec{ArrivalRate: rate, DecodeTokens: decode, MaxBatch: maxBatch, Requests: requests, Seed: opts.Seed}
		rb, err := workload.Simulate(mBase, spec)
		if err != nil {
			res.AddNote("simulate failed: %v", err)
			return res
		}
		re, err := workload.Simulate(mExf, spec)
		if err != nil {
			res.AddNote("simulate failed: %v", err)
			return res
		}
		sBase.Add(frac, rb.P95)
		sExf.Add(frac, re.P95)
		res.AddNote("load %.0f%% of baseline capacity: P95 %.3fs -> %.3fs (%.1fx lower)",
			frac*100, rb.P95, re.P95, rb.P95/re.P95)
	}
	res.AddNote("near the baseline's saturation point the latency gap explodes: the throughput headroom ExFlow buys is tail-latency insurance")
	return res
}

// runAblationMigration studies online re-placement: how many expert moves a
// workload-drift re-solve requires after canonicalization, what the
// parameter traffic costs, and how many iterations amortize it.
func runAblationMigration(opts ExperimentOptions) *Result {
	res := &Result{ID: "ablation_migration", Title: "Ablation: online re-placement cost vs benefit under workload drift"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed})
	expertBytes := int(cfg.ExpertParams()) * 2 // fp16 parameters

	// Era 1: solve on pile. Era 2: the workload drifts to yelp-like
	// traffic (different domain mixture over the same model).
	pilePl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
	yelp := sys.ProfileOn(synth.Yelp(), opts.scaled(3000, 400), 0)
	resolved := placement.Staged(yelp.AllTransitionCounts(), cfg.Layers, cfg.Experts, sys.Topo, opts.Seed+1)

	counts := yelp.AllTransitionCounts()
	keepCross := pilePl.Crossings(counts)
	moveCross := resolved.Crossings(counts)
	plan := placement.PriceMigration(pilePl, resolved, sys.Topo, expertBytes)

	tb := newTableHelper(res, "re-placement accounting", "metric#")
	s := tb.NewSeries("value")
	s.Add(0, float64(len(plan.Moves)))
	s.Add(1, float64(plan.CrossNodeMoves))
	s.Add(2, plan.Seconds)
	s.Add(3, keepCross)
	s.Add(4, moveCross)
	totalSlots := cfg.Layers * cfg.Experts
	res.AddNote("metrics: 0=expert moves (of %d slots), 1=cross-node moves, 2=migration seconds, 3=crossings if keeping old plan, 4=crossings after re-solve", totalSlots)
	res.AddNote("drift pile->yelp: %d/%d experts move (%.0f%% of the model stays put), %.1f MB over the wire in %.1f ms",
		len(plan.Moves), totalSlots, 100*(1-float64(len(plan.Moves))/float64(totalSlots)),
		float64(plan.Bytes)/1e6, plan.Seconds*1e3)
	if moveCross < keepCross {
		res.AddNote("re-solve reduces crossings by %.1f%%; Table III predicts small gains — affinity is mostly dataset-insensitive, so migration rarely pays",
			100*(1-moveCross/keepCross))
	} else {
		res.AddNote("re-solve does not beat the stale plan on drifted traffic — consistent with Table III (affinity is dataset-insensitive)")
	}
	return res
}

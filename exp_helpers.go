package exflow

import "repro/internal/stats"

// newTableHelper creates a stats.Table and registers it on the result.
func newTableHelper(res *Result, title, xName string) *stats.Table {
	t := stats.NewTable(title, xName)
	res.Tables = append(res.Tables, t)
	return t
}

// newGridHeatmap wraps a raw grid in a heatmap.
func newGridHeatmap(title string, grid [][]float64) *stats.Heatmap {
	return stats.NewHeatmap(title, grid)
}

package exflow

// One benchmark per paper artifact. Each runs the corresponding experiment
// end to end (profiling, placement solving, simulated inference) and reports
// the headline metric of that figure alongside the usual ns/op. The bench
// scale is reduced from the CLI default so the full suite finishes in
// minutes; `cmd/exflow-bench -experiment <id>` runs the full-size version.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/placement"
)

// benchOpts is the shared scale for the per-figure experiment benches.
var benchOpts = ExperimentOptions{Scale: 0.25, Seed: 1}

// runExperimentBench executes an experiment b.N times and stores a metric.
func runExperimentBench(b *testing.B, id string, metric func(*Result) (string, float64)) {
	b.Helper()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// seriesEnd returns the last y value of the named series in table ti, or 0
// when the table or series is missing (e.g. an experiment that failed and
// reported only notes).
func seriesEnd(res *Result, ti int, name string) float64 {
	if ti >= len(res.Tables) {
		return 0
	}
	for _, s := range res.Tables[ti].SeriesL {
		if s.Name == name && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return 0
}

func BenchmarkTable1CommVolume(b *testing.B) {
	runExperimentBench(b, "table1", func(r *Result) (string, float64) {
		// Measured ExFlow volume (row 2) vs Deepspeed (row 1), smaller is
		// better.
		tb := r.Tables[0]
		var ds, exf float64
		for _, s := range tb.SeriesL {
			if s.Name == "measured-bytes" {
				ds, exf = s.Y[0], s.Y[1]
			}
		}
		if ds == 0 {
			return "volratio", 0
		}
		return "volratio", exf / ds
	})
}

func BenchmarkFig2AffinityHeatmaps(b *testing.B) {
	runExperimentBench(b, "fig2", func(r *Result) (string, float64) {
		return "top3mass", r.Heat[0].DominantColumnFraction(3)
	})
}

func BenchmarkFig6CommLatency(b *testing.B) {
	runExperimentBench(b, "fig6", func(r *Result) (string, float64) {
		return "coh-a2a-frac", seriesEnd(r, 0, "coherent-alltoall")
	})
}

func BenchmarkFig7TokenLocality(b *testing.B) {
	runExperimentBench(b, "fig7", func(r *Result) (string, float64) {
		return "exf-local-64gpu", seriesEnd(r, 0, "exflow-affinity")
	})
}

func BenchmarkFig8NodeLocality(b *testing.B) {
	runExperimentBench(b, "fig8", func(r *Result) (string, float64) {
		return "exf-intranode-16n", seriesEnd(r, 0, "exflow-affinity")
	})
}

func BenchmarkFig9OpBreakdown(b *testing.B) {
	runExperimentBench(b, "fig9", func(r *Result) (string, float64) {
		return "a2ashare-8node", seriesEnd(r, 0, "alltoall")
	})
}

func BenchmarkFig10Throughput(b *testing.B) {
	runExperimentBench(b, "fig10", func(r *Result) (string, float64) {
		best := 0.0
		for _, s := range r.Tables[0].SeriesL {
			if s.Name != "exflow-affinity" {
				continue
			}
			for _, v := range s.Y {
				if v > best {
					best = v
				}
			}
		}
		return "bestspeedup", best
	})
}

func BenchmarkFig11LoadEvolution(b *testing.B) {
	runExperimentBench(b, "fig11", func(r *Result) (string, float64) {
		return "gini-final", seriesEnd(r, 0, "imbalance-gini")
	})
}

func BenchmarkFig12AffinityEvolution(b *testing.B) {
	runExperimentBench(b, "fig12", func(r *Result) (string, float64) {
		return "late-affinity", seriesEnd(r, 1, "32-experts")
	})
}

func BenchmarkFig13TokenSampling(b *testing.B) {
	runExperimentBench(b, "fig13", func(r *Result) (string, float64) {
		return "speedup-64E-5k", seriesEnd(r, 0, "64-experts")
	})
}

func BenchmarkTable3OODConsistency(b *testing.B) {
	runExperimentBench(b, "table3", func(r *Result) (string, float64) {
		return "yelp-intragpu", seriesEnd(r, 0, "intra-gpu")
	})
}

func BenchmarkFig14to16AffinityGrid(b *testing.B) {
	runExperimentBench(b, "fig14_16", nil)
}

func BenchmarkAblationContextCoherence(b *testing.B) {
	runExperimentBench(b, "ablation_coherence", func(r *Result) (string, float64) {
		return "coh-speedup-32g", seriesEnd(r, 0, "coherent")
	})
}

func BenchmarkAblationSolvers(b *testing.B) {
	runExperimentBench(b, "ablation_solvers", nil)
}

func BenchmarkAblationStaged(b *testing.B) {
	runExperimentBench(b, "ablation_staged", nil)
}

func BenchmarkAblationReplication(b *testing.B) {
	runExperimentBench(b, "ablation_replication", nil)
}

func BenchmarkAblationTop2(b *testing.B) {
	runExperimentBench(b, "ablation_top2", func(r *Result) (string, float64) {
		return "top2-bytes-ratio", seriesEnd(r, 0, "alltoall-bytes-ratio")
	})
}

func BenchmarkAblationCapacity(b *testing.B) {
	runExperimentBench(b, "ablation_capacity", func(r *Result) (string, float64) {
		return "dropfrac-cf4", seriesEnd(r, 0, "dropped-frac")
	})
}

func BenchmarkAblationLearnedGate(b *testing.B) {
	runExperimentBench(b, "ablation_learnedgate", func(r *Result) (string, float64) {
		return "gain-400steps", seriesEnd(r, 0, "placement-gain")
	})
}

func BenchmarkAblationHierarchical(b *testing.B) {
	runExperimentBench(b, "ablation_hierarchical", func(r *Result) (string, float64) {
		return "hier-speedup-8n", seriesEnd(r, 0, "hier/flat")
	})
}

func BenchmarkAblationMigration(b *testing.B) {
	runExperimentBench(b, "ablation_migration", nil)
}

func BenchmarkServingLatency(b *testing.B) {
	runExperimentBench(b, "serving_latency", func(r *Result) (string, float64) {
		if len(r.Tables) == 0 {
			return "p95-ratio", 0
		}
		base := seriesEnd(r, 0, "deepspeed-p95")
		exf := seriesEnd(r, 0, "exflow-p95")
		if exf == 0 {
			return "p95-ratio", 0
		}
		return "p95-ratio", base / exf
	})
}

func BenchmarkServeAdaptive(b *testing.B) {
	runExperimentBench(b, "serving_adaptive", func(r *Result) (string, float64) {
		// Drift-tail P95 of the static fleet over the adaptive fleet (>1
		// means the live re-placement is paying off).
		static := seriesEnd(r, 0, "static-p95")
		adaptive := seriesEnd(r, 0, "adaptive-p95")
		if adaptive == 0 {
			return "tail-p95-ratio", 0
		}
		return "tail-p95-ratio", static / adaptive
	})
}

// Micro-benchmarks of the pipeline's hot stages at production-like sizes.

func BenchmarkProfile3000Tokens(b *testing.B) {
	sys := NewSystem(SystemOptions{Model: moe.GPTM(32), GPUs: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Profile(3000)
	}
}

func BenchmarkSolvePlacement32E(b *testing.B) {
	sys := NewSystem(SystemOptions{Model: moe.GPTM(32), GPUs: 8, Seed: 1})
	tr := sys.Profile(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.SolvePlacement(tr)
	}
}

func BenchmarkInferenceIteration16GPU(b *testing.B) {
	cfg := moe.GPTM(32)
	cfg.Layers = 12
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 16, Seed: 1})
	pl := sys.SolvePlacement(sys.Profile(1000))
	w := Workload{RequestsPerGPU: 8, PromptLen: 8, GenerateTokens: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sys.Run(engine.ExFlow, pl, w)
		if i == 0 {
			b.ReportMetric(rep.Throughput, "sim-tok/s")
		}
	}
}

func BenchmarkExpertMemory(b *testing.B) {
	runExperimentBench(b, "expert_memory", func(r *Result) (string, float64) {
		// 2x-oversubscription P95 of LRU over affinity-prefetch (>1 means
		// the affinity oracle is paying off).
		var lru, aff float64
		if len(r.Tables) >= 2 {
			for _, s := range r.Tables[1].SeriesL {
				for i, x := range s.X {
					if x == 2 {
						switch s.Name {
						case "lru":
							lru = s.Y[i]
						case "affinity":
							aff = s.Y[i]
						}
					}
				}
			}
		}
		if aff == 0 {
			return "p95-ratio-2x", 0
		}
		return "p95-ratio-2x", lru / aff
	})
}

func BenchmarkOversubscribedIteration(b *testing.B) {
	cfg := moe.GPTM(32)
	cfg.Layers = 12
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: 1})
	pl := sys.SolvePlacement(sys.Profile(1000))
	w := Workload{RequestsPerGPU: 4, PromptLen: 8, GenerateTokens: 2, Oversubscription: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sys.Run(engine.ExFlow, pl, w)
		if i == 0 {
			b.ReportMetric(rep.ExpertMem.HitRate(), "hit-rate")
		}
	}
}

func BenchmarkMemoryAwareAnneal(b *testing.B) {
	// The annealer with the expert-stall term active — the hot path of
	// memory-aware solves. Every proposal prices the crossing delta through
	// the sparse TransIndex (O(degree)) and the two affected GPUs' residency
	// change through the sorted residency lists (merge + tail sum, no sort).
	// BenchmarkMemoryAwareAnnealDense (solverbench_test.go) is the dense
	// reference this is measured against.
	counts, mo, init, _ := solverBenchFixture(b)
	b.ResetTimer()
	var out *placement.Placement
	for i := 0; i < b.N; i++ {
		out = placement.Anneal(counts, init, placement.AnnealOptions{Seed: uint64(i), Memory: mo})
	}
	b.ReportMetric(mo.StallPerToken(out)*1e3, "stall-ms-per-token")
	b.ReportMetric(out.Crossings(counts), "crossings")
}

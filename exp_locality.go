package exflow

import (
	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/synth"
)

func init() {
	register("fig7", runFig7)
	register("fig8", runFig8)
	register("table3", runTable3)
}

// runFig7 reproduces Fig 7: on GPT 350M MoE-64, the percentage of tokens
// routed to experts on their current GPU (bars: Deepspeed vs ExFlow with
// affinity) and the resulting reduction in cross-GPU communication (line),
// as the expert-parallel group grows from 1 to 64 GPUs.
func runFig7(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig7", Title: "Tokens staying on the same GPU and reduced cross-GPU communication (MoE-64)"}
	cfg := moe.GPTM(64)
	cfg.Layers = opts.scaled(24, 6)
	tb := newTableHelper(res, "fraction of dispatches staying on the current GPU", "gpus")
	sBase := tb.NewSeries("deepspeed")
	sExf := tb.NewSeries("exflow-affinity")
	sSaved := tb.NewSeries("comm-reduction")
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	for _, gpus := range []int{1, 4, 8, 16, 32, 64} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: gpus, Seed: opts.Seed})
		base := sys.Run(engine.Vanilla, sys.Baseline(), w)
		pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
		exf := sys.Run(engine.ExFlow, pl, w)
		x := float64(gpus)
		sBase.Add(x, base.FracDispatchLocal())
		sExf.Add(x, exf.FracDispatchLocal())
		saved := 0.0
		if base.AlltoallBytes > 0 {
			saved = 1 - float64(exf.AlltoallBytes)/float64(base.AlltoallBytes)
		}
		sSaved.Add(x, saved)
		res.AddNote("%d GPUs: local dispatches %.1f%% (baseline %.1f%%), alltoall bytes reduced %.1f%%",
			gpus, exf.FracDispatchLocal()*100, base.FracDispatchLocal()*100, saved*100)
	}
	res.AddNote("paper: >50%% local on 4 GPUs, ~40%% on 8, ~28%% on 32; baseline drops as 1/P; 40%% comm saved on 4 GPUs, 25%% on 32")
	return res
}

// runFig8 reproduces Fig 8: the same view at node granularity — the share
// of tokens routed to experts within the current node, and the reduction in
// inter-node communication, for 1 to 16 nodes (4 GPUs each).
func runFig8(opts ExperimentOptions) *Result {
	res := &Result{ID: "fig8", Title: "Tokens staying within the same node and reduced inter-node communication (MoE-64)"}
	cfg := moe.GPTM(64)
	cfg.Layers = opts.scaled(24, 6)
	tb := newTableHelper(res, "fraction of dispatches staying intra-node", "nodes")
	sBase := tb.NewSeries("deepspeed")
	sExf := tb.NewSeries("exflow-affinity")
	sSaved := tb.NewSeries("inter-node-reduction")
	w := Workload{RequestsPerGPU: opts.scaled(8, 2), GenerateTokens: opts.scaled(3, 2)}
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		sys := NewSystem(SystemOptions{Model: cfg, GPUs: nodes * 4, Seed: opts.Seed})
		base := sys.Run(engine.Vanilla, sys.Baseline(), w)
		pl := sys.SolvePlacement(sys.Profile(opts.scaled(3000, 400)))
		exf := sys.Run(engine.ExFlow, pl, w)
		x := float64(nodes)
		sBase.Add(x, base.FracDispatchIntraNode())
		sExf.Add(x, exf.FracDispatchIntraNode())
		saved := 0.0
		if base.DispatchCrossNode > 0 {
			saved = 1 - float64(exf.DispatchCrossNode)/float64(base.DispatchCrossNode)
		}
		sSaved.Add(x, saved)
		res.AddNote("%d node(s): intra-node dispatches %.1f%% (baseline %.1f%%), inter-node dispatches reduced %.1f%%",
			nodes, exf.FracDispatchIntraNode()*100, base.FracDispatchIntraNode()*100, saved*100)
	}
	res.AddNote("paper: tokens are on average ~2x more likely to stay within the node under the staged affinity design")
	return res
}

// runTable3 reproduces Table III: expert affinity profiled on Pile holds on
// out-of-distribution datasets. The placement is solved from Pile traces
// only; intra-GPU and intra-node locality are then measured on evaluation
// traces from each dataset and row-normalized to the Pile column.
func runTable3(opts ExperimentOptions) *Result {
	res := &Result{ID: "table3", Title: "Affinity consistency on out-of-distribution datasets (row-normalized to Pile)"}
	cfg := moe.GPTM(32)
	cfg.Layers = opts.scaled(24, 6)
	sys := NewSystem(SystemOptions{Model: cfg, GPUs: 8, Seed: opts.Seed})
	pl := sys.SolvePlacement(sys.Profile(opts.scaled(4000, 500)))

	evalTokens := opts.scaled(5000, 600)
	type row struct{ gpu, node float64 }
	vals := map[string]row{}
	datasets := synth.AllDatasets()
	for _, ds := range datasets {
		tr := sys.ProfileOn(ds, evalTokens, 1<<21)
		loc := pl.Locality(tr, sys.Topo)
		vals[ds.Name] = row{gpu: loc.FracSameGPU, node: loc.FracIntraNode}
	}
	tb := newTableHelper(res, "locality under Pile-derived placement, normalized to Pile", "dataset#")
	sGPU := tb.NewSeries("intra-gpu")
	sNode := tb.NewSeries("intra-node")
	pile := vals["pile"]
	for i, ds := range datasets {
		v := vals[ds.Name]
		sGPU.Add(float64(i), v.gpu/pile.gpu)
		sNode.Add(float64(i), v.node/pile.node)
		res.AddNote("dataset %d = %s: intra-gpu %.3f, intra-node %.3f (normalized)", i, ds.Name, v.gpu/pile.gpu, v.node/pile.node)
	}
	res.AddNote("paper: all entries within ~1%% of 1.000 — affinity is an intrinsic property of the pre-trained model, not the profiling dataset")
	return res
}

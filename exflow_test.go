package exflow

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/moe"
	"repro/internal/synth"
)

func smallSystem(gpus int) *System {
	cfg := moe.GPTM(16)
	cfg.Layers = 6
	return NewSystem(SystemOptions{Model: cfg, GPUs: gpus, Seed: 3})
}

func TestNewSystemDefaults(t *testing.T) {
	sys := smallSystem(8)
	if sys.Dataset.Name != "pile" {
		t.Fatal("default dataset should be pile")
	}
	if sys.Topo.TotalGPUs() != 8 {
		t.Fatal("topology wrong")
	}
	if sys.Router.Experts() != 16 {
		t.Fatal("router experts wrong")
	}
}

func TestNewSystemRejectsBadModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSystem(SystemOptions{Model: moe.Config{}, GPUs: 4})
}

func TestProfileShape(t *testing.T) {
	sys := smallSystem(4)
	tr := sys.Profile(200)
	if tr.Tokens() != 200 || tr.Layers != 6 || tr.Experts != 16 {
		t.Fatalf("trace shape wrong: %d tokens %dx%d", tr.Tokens(), tr.Layers, tr.Experts)
	}
}

func TestProfileOnDistinctDatasets(t *testing.T) {
	sys := smallSystem(4)
	a := sys.ProfileOn(synth.Pile(), 100, 0)
	b := sys.ProfileOn(synth.Yelp(), 100, 0)
	diff := 0
	for i := range a.Paths {
		for j := range a.Paths[i] {
			if a.Paths[i][j] != b.Paths[i][j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different datasets should route differently")
	}
}

func TestSolvePlacementValidAndBetter(t *testing.T) {
	sys := smallSystem(8)
	tr := sys.Profile(1500)
	pl := sys.SolvePlacement(tr)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := tr.AllTransitionCounts()
	if pl.Crossings(counts) >= sys.Baseline().Crossings(counts) {
		t.Fatal("solved placement should beat contiguous baseline")
	}
}

func TestRunAndSpeedup(t *testing.T) {
	sys := smallSystem(8)
	w := Workload{RequestsPerGPU: 2, PromptLen: 4, GenerateTokens: 2}
	base, exf, speedup := sys.Speedup(1000, w)
	if base.GeneratedTokens != exf.GeneratedTokens {
		t.Fatal("token counts differ across modes")
	}
	if speedup <= 1 {
		t.Fatalf("expected ExFlow speedup > 1, got %v", speedup)
	}
	// Identical outputs (no accuracy degradation).
	for r := range base.Outputs {
		for i := range base.Outputs[r] {
			if base.Outputs[r][i] != exf.Outputs[r][i] {
				t.Fatal("outputs diverged between baseline and exflow")
			}
		}
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.withDefaults()
	if w.RequestsPerGPU != 8 || w.PromptLen != 16 || w.GenerateTokens != 4 || w.EvalOffset != 1<<20 {
		t.Fatalf("defaults wrong: %+v", w)
	}
	// Explicit values survive.
	w2 := Workload{RequestsPerGPU: 3}.withDefaults()
	if w2.RequestsPerGPU != 3 {
		t.Fatal("explicit value overridden")
	}
}

func TestRunModesDiffer(t *testing.T) {
	sys := smallSystem(8)
	w := Workload{RequestsPerGPU: 2, PromptLen: 4, GenerateTokens: 2}
	van := sys.Run(engine.Vanilla, sys.Baseline(), w)
	coh := sys.Run(engine.ContextCoherent, sys.Baseline(), w)
	if coh.AlltoallBytes >= van.AlltoallBytes {
		t.Fatal("coherent mode should move fewer alltoall bytes")
	}
}

func TestDescribe(t *testing.T) {
	if s := smallSystem(4).describe(); len(s) == 0 {
		t.Fatal("describe empty")
	}
}
